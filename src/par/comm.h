// esamr::par — in-process SPMD message-passing runtime ("Comm v2").
//
// This is the MPI substitute for the reproduction (see DESIGN.md): P "ranks"
// run as threads inside one process and communicate exclusively through the
// Comm interface below — buffered tagged point-to-point messages plus the
// small set of collectives the forest algorithms need (barrier, bcast,
// reduce, allgather(v), allreduce, exclusive scan, alltoallv). Algorithms
// written against Comm are structured exactly as they would be against MPI:
// all octant/element storage is rank-local and every exchange is explicit.
//
// Collectives come in two selectable backends (RunOptions::backend):
//   - Backend::p2p (default): real point-to-point algorithms layered on the
//     send/recv primitives — binomial-tree bcast/reduce, recursive-doubling
//     allreduce/allgather (ring fallback for non-power-of-two sizes), ring
//     allgatherv, pairwise alltoallv, chain exscan. This is the backend whose
//     message counts and byte volumes mirror what the paper's cost model
//     analyzes.
//   - Backend::reference: the original shared-slot implementations (write own
//     slot; barrier; read peers' slots; barrier), kept as a differential
//     -testing oracle (tests/test_collectives.cc).
// The environment variable ESAMR_COMM_BACKEND=reference|p2p overrides the
// default for par::run calls that do not pass explicit RunOptions.
//
// Every rank carries a CommStats (par/stats.h) with message/byte counters and
// blocked-time accounting, and RunOptions can enable deterministic fault
// injection (par/inject.h) plus recv/barrier timeouts that turn silent
// deadlocks into a TimeoutError naming the blocked rank and envelope.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <source_location>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "par/backoff.h"
#include "par/buffer.h"
#include "par/check.h"
#include "par/inject.h"
#include "par/stats.h"

namespace esamr::par {

/// Wildcard for Comm::recv / Comm::iprobe source matching.
inline constexpr int any_source = -1;
/// Wildcard for Comm::recv / Comm::iprobe tag matching.
inline constexpr int any_tag = -1;

/// Reduction operators for Comm::allreduce / Comm::reduce.
enum class ReduceOp { sum, min, max, logical_or, logical_and };

/// Collective implementation backend (see file header).
enum class Backend { reference, p2p };

/// Link-level automatic repeat request — the cheapest rung of the graded
/// recovery ladder (DESIGN.md "Recovery ladder"). With integrity on, every
/// sealed send retains a zero-copy reference to the clean payload (keyed by
/// (source, seq) per destination) until the receiver's CRC verification acks
/// it. On a CRC failure the receiver, instead of escalating CorruptMessage
/// to the supervisor, re-reads the retained payload under a bounded
/// seeded-backoff loop; only when the budget is exhausted (retransmissions
/// keep drawing injected faults) does the corruption escalate. The reference
/// backend's shared slots are not covered (a clean retained copy does not
/// exist there); shared-slot corruption always escalates.
struct ArqConfig {
  bool enabled = true;
  /// Retransmission requests per corrupt message before escalating.
  int max_retransmits = 3;
  /// Seeded backoff between retransmission requests; microsecond scale by
  /// default — a link retry must stay orders of magnitude cheaper than the
  /// supervisor's restart backoff.
  BackoffPolicy backoff{100e-6, 2.0, 2e-3, 0.5};
};

/// Options for one SPMD section.
struct RunOptions {
  Backend backend = Backend::p2p;
  InjectConfig inject{};
  /// End-to-end message integrity: senders stamp a CRC32C + length envelope
  /// on every payload (point-to-point, collective-internal, and the
  /// reference backend's shared slots) and receivers verify it before the
  /// bytes are used, throwing CorruptMessage on mismatch. Default on; set
  /// false (or ESAMR_INTEGRITY=0 for par::run calls without explicit
  /// options) to measure the unprotected fast path (bench_comm).
  bool integrity = true;
  /// Link-level retransmission of corrupt messages (see ArqConfig). Active
  /// only when `integrity` is also on.
  ArqConfig arq{};
  /// Optional caller-owned ARQ accounting scope (par/stats.h): when set,
  /// every link-level ARQ event in this world bumps these counters in
  /// addition to the process-wide ArqStats. resil::supervise installs one per
  /// supervised run unless the caller provided its own, so concurrent
  /// supervisors (the serving layer) never read each other's heals. Not
  /// owned; must outlive the run.
  ArqScope* arq_scope = nullptr;
  /// Heartbeat failure detection: every comm operation (and every slice of a
  /// blocked wait) stamps the rank's liveness; a rank silent for longer than
  /// this window — and not yet returned from its SPMD function — is declared
  /// dead by the first peer to notice from inside a blocked recv/barrier,
  /// which throws RankFailure naming the dead rank, the detector, and the
  /// detector's wait site. Converts silent rank death (InjectConfig::
  /// kill_silent) into a named fault within a bounded window instead of a
  /// hang-then-timeout. 0 = disarmed. The window must comfortably exceed the
  /// longest compute-only gap between a rank's comm operations.
  double heartbeat_timeout_s = 0.0;
  /// recv (point-to-point and inside collectives) fails with TimeoutError
  /// after this many seconds without a matching visible message; 0 = wait
  /// forever.
  double recv_timeout_s = 0.0;
  /// barrier fails with TimeoutError after this many seconds; 0 = forever.
  double barrier_timeout_s = 0.0;
  /// SPMD correctness checking level (par/check.h): 0 = off, 1 = race +
  /// collective-matching + deadlock detectors, 2 = additionally CRC the
  /// rank-invariant results of bcast/allreduce/allgather(v). The default -1
  /// defers to the ESAMR_CHECK environment variable (absent = off); an
  /// explicit 0 overrides the environment.
  int check = -1;
};

/// Thrown by recv/barrier when a configured timeout expires. The message
/// names the blocked rank and the envelope (source, tag, collective) it was
/// waiting on — a deadlock diagnostic instead of a silent hang.
class TimeoutError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown from a victim rank's comm operation when seeded rank-kill
/// injection fires (InjectConfig::{kill_rank_stride, kill_after_ops}),
/// modelling a one-shot node failure. Like any rank error it poisons the
/// world so peer ranks unwind, and is re-thrown from par::run; the
/// resil::supervise loop catches it and retries from a checkpoint.
class RankFailure : public std::runtime_error {
 public:
  RankFailure(int rank, std::uint64_t op)
      : std::runtime_error("esamr::par rank failure injected: rank " + std::to_string(rank) +
                           " killed at comm op " + std::to_string(op)),
        rank_(rank) {}
  /// Heartbeat-detector verdict: `rank` was silent for `silent_s` seconds and
  /// was declared dead by `detector` (the peer whose blocked wait noticed).
  /// `what` carries the full diagnostic including the detector's wait site.
  RankFailure(int rank, int detector, double silent_s, const std::string& what)
      : std::runtime_error(what), rank_(rank), detector_(detector), silent_s_(silent_s) {}
  /// The rank that failed (the victim, not the detector).
  int rank() const noexcept { return rank_; }
  /// The peer that detected the failure, or -1 when the failure was thrown
  /// by the victim itself (injected kill).
  int detector() const noexcept { return detector_; }
  /// How long the victim had been silent at detection (0 for injected kills).
  double silent_s() const noexcept { return silent_s_; }

 private:
  int rank_;
  int detector_ = -1;
  double silent_s_ = 0.0;
};

/// Thrown by the receiving rank when a message payload fails its integrity
/// envelope (CRC32C + length stamped at the sender): a silent-data-corruption
/// event turned into a diagnosed fault. The message names the receiver, the
/// sender, and both the expected and observed (bytes, CRC). Like any rank
/// error it poisons the world; resil::supervise classifies it as recoverable
/// and retries from the last snapshot.
class CorruptMessage : public std::runtime_error {
 public:
  CorruptMessage(int rank, int source, const std::string& what)
      : std::runtime_error(what), rank_(rank), source_(source) {}
  /// The rank that detected the corruption (the receiver).
  int rank() const noexcept { return rank_; }
  /// The rank whose payload arrived corrupted.
  int source() const noexcept { return source_; }

 private:
  int rank_;
  int source_;
};

/// CRC32C + length integrity envelope stamped on a payload at the sender
/// (or shared-slot writer) and verified at every receiver.
struct Seal {
  std::uint32_t crc = 0;
  std::uint64_t nbytes = 0;
  bool stamped = false;  ///< false = integrity was off at the writer
};

/// A received point-to-point message: envelope plus a shared immutable
/// payload view (par/buffer.h). The same storage may still be referenced by
/// the sender's pending Request; reading is always safe, and take_bytes()
/// moves the storage out only when this message holds the last reference.
struct Message {
  int source = any_source;
  int tag = any_tag;
  Buffer payload;
  /// Per-(source, destination) post sequence number, stamped when the send
  /// was posted (send or isend). Fault injection keys its payload/delay
  /// streams on this, so victims are fixed at post time regardless of the
  /// order requests later complete in.
  std::uint64_t seq = 0;
  /// Integrity envelope (RunOptions::integrity): the payload CRC32C and byte
  /// count stamped once at the sender over the shared storage, verified by
  /// the receiver in place — no second copy on either side.
  Seal seal;
  /// Internal: earliest wall time (par::wall_seconds) at which the message
  /// is visible to recv/iprobe under fault injection. 0 = immediately.
  double visible_at = 0.0;
  /// Internal: the sender's vector clock at send time, stamped only when the
  /// correctness checker (par/check.h) is enabled; carries the
  /// happens-before edge to the receiver.
  std::vector<std::uint32_t> hb;

  const std::byte* data() const noexcept { return payload.data(); }
  std::size_t size() const noexcept { return payload.size(); }

  /// Zero-copy typed view of the payload in place (the fast-path consumer).
  template <typename T>
  std::span<const T> view() const {
    static_assert(std::is_trivially_copyable_v<T>);
    ESAMR_ASSERT(size() % sizeof(T) == 0, source,
                 "par::Message::view: payload size " + std::to_string(size()) +
                     " is not a multiple of element size " + std::to_string(sizeof(T)) +
                     " (tag " + std::to_string(tag) + ")");
    ESAMR_ASSERT(reinterpret_cast<std::uintptr_t>(data()) % alignof(T) == 0, source,
                 "par::Message::view: payload is not aligned for the element type");
    return {reinterpret_cast<const T*>(data()), size() / sizeof(T)};
  }

  /// Move the payload bytes out (zero-copy when this message holds the last
  /// reference to the storage; see Buffer::take_bytes).
  std::vector<std::byte> take_bytes() { return std::move(payload).take_bytes(); }

  /// Reinterpret the payload as an array of trivially copyable T (copies).
  template <typename T>
  std::vector<T> as() const {
    static_assert(std::is_trivially_copyable_v<T>);
    ESAMR_ASSERT(size() % sizeof(T) == 0, source,
                 "par::Message::as: payload size " + std::to_string(size()) +
                     " is not a multiple of element size " + std::to_string(sizeof(T)) +
                     " (tag " + std::to_string(tag) + ")");
    std::vector<T> out(size() / sizeof(T));
    if (!out.empty()) std::memcpy(out.data(), data(), size());
    return out;
  }

  /// Reinterpret the payload as exactly one T.
  template <typename T>
  T value() const {
    auto v = as<T>();
    ESAMR_ASSERT(v.size() == 1, source,
                 "par::Message::value: payload holds " + std::to_string(v.size()) +
                     " elements, expected exactly one (tag " + std::to_string(tag) + ")");
    return v[0];
  }
};

class World;
class Comm;

namespace detail {
struct RequestState;
struct CollOp;
}  // namespace detail

/// Handle for a pending nonblocking operation (isend / irecv / iallreduce /
/// iallgatherv). Move-only. Completion semantics:
///   - test(): one nonblocking progress attempt; true once complete.
///   - wait(): block (with the usual timeout / deadlock machinery) until
///     complete, then return. Results are read through message() (irecv),
///     result<T>() (iallreduce), or parts()/parts_as<T>() (iallgatherv).
///   - Destroying an incomplete Request drains it: ownership of a send
///     buffer returns to the runtime for disposal and the checker's
///     in-flight region is retired (CommStats::requests_drained counts it).
///     resil::supervise relies on this when a fault unwinds a rank with
///     requests still pending.
class Request {
 public:
  Request() noexcept;
  Request(Request&&) noexcept;
  Request& operator=(Request&&) noexcept;
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;
  ~Request();

  bool valid() const noexcept { return st_ != nullptr; }
  /// True once the operation has completed (never blocks; makes progress).
  bool test();
  /// Block until the operation completes.
  void wait();

  /// The received message (irecv only; wait()/test() must have completed).
  Message& message();
  /// The reduced result bytes (iallreduce only, after completion).
  std::span<const std::byte> result_bytes();
  template <typename T>
  T result() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto raw = result_bytes();
    T out;
    ESAMR_ASSERT(raw.size() == sizeof(T), -1,
                 "par::Request::result: payload size mismatch");
    std::memcpy(&out, raw.data(), sizeof(T));
    return out;
  }
  /// Per-rank payloads (iallgatherv only, after completion).
  std::vector<std::vector<std::byte>>& parts();
  template <typename T>
  std::vector<std::vector<T>> parts_as() {
    static_assert(std::is_trivially_copyable_v<T>);
    auto& raw = parts();
    std::vector<std::vector<T>> out(raw.size());
    for (std::size_t r = 0; r < raw.size(); ++r) {
      out[r].resize(raw[r].size() / sizeof(T));
      if (!out[r].empty()) std::memcpy(out[r].data(), raw[r].data(), raw[r].size());
    }
    return out;
  }

 private:
  friend class Comm;
  explicit Request(std::shared_ptr<detail::RequestState> st) noexcept;
  std::shared_ptr<detail::RequestState> st_;
};

/// Complete every valid request, in order (order is immaterial: sends are
/// buffered and receives match by envelope, so any completion order works).
void wait_all(std::span<Request> requests);

/// Per-rank communicator handle. One Comm per rank thread; methods are only
/// ever invoked by the owning rank's thread (SPMD style).
class Comm {
 public:
  Comm(World* world, int rank);

  int rank() const noexcept { return rank_; }
  int size() const noexcept;
  Backend backend() const noexcept;

  // --- Point-to-point -----------------------------------------------------
  // Sends are buffered and never block; receives block until a matching
  // message (by source and tag, wildcards allowed) is available.

  void send_bytes(int dest, int tag, const void* data, std::size_t nbytes);

  /// Zero-copy send: the Buffer's storage is shared with the mailbox, not
  /// copied (adopt a vector first for a fully copy-free path).
  void send(int dest, int tag, Buffer payload);

  template <typename T>
  void send(int dest, int tag, std::span<const T> payload) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag, payload.data(), payload.size_bytes());
  }
  template <typename T>
  void send(int dest, int tag, const std::vector<T>& payload) {
    send(dest, tag, std::span<const T>(payload));
  }
  /// Zero-copy typed send: adopts the vector's storage.
  template <typename T>
  void send(int dest, int tag, std::vector<T>&& payload) {
    send(dest, tag, Buffer::adopt_vec(std::move(payload)));
  }
  template <typename T>
  void send_value(int dest, int tag, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag, &v, sizeof(T));
  }

  /// Blocking receive of the first message matching (source, tag).
  Message recv(int source = any_source, int tag = any_tag,
               std::source_location loc = std::source_location::current());

  /// Non-blocking test for a matching (visible) message.
  bool iprobe(int source = any_source, int tag = any_tag);

  // --- Nonblocking point-to-point ------------------------------------------
  // isend posts the message immediately (sends are buffered, so the transfer
  // itself cannot block); the Request tracks buffer ownership: from post to
  // completion the payload storage belongs to the runtime, and with the
  // checker enabled any write into the range is a diagnosed race. irecv
  // registers interest; test()/wait() match and consume the message.

  /// Zero-copy nonblocking send of an adopted payload.
  Request isend(int dest, int tag, Buffer payload,
                std::source_location loc = std::source_location::current());
  /// Zero-copy typed nonblocking send: adopts the vector's storage.
  template <typename T>
  Request isend(int dest, int tag, std::vector<T>&& payload,
                std::source_location loc = std::source_location::current()) {
    return isend(dest, tag, Buffer::adopt_vec(std::move(payload)), loc);
  }
  /// Nonblocking send that copies [data, data+nbytes) (compatibility path).
  Request isend_bytes(int dest, int tag, const void* data, std::size_t nbytes,
                      std::source_location loc = std::source_location::current());

  /// Nonblocking receive of the first message matching (source, tag).
  Request irecv(int source = any_source, int tag = any_tag,
                std::source_location loc = std::source_location::current());

  /// In-place combiner for the byte-level reductions: op(acc, in) folds `in`
  /// into `acc`; both point at `nbytes` bytes. Must be commutative (all
  /// ReduceOp combiners are).
  using Combine = std::function<void(void* acc, const void* in)>;

  // --- Nonblocking collectives ----------------------------------------------
  // Split-phase p2p algorithms: the request is posted (and the collective
  // sequence slot claimed) immediately, rounds advance inside test()/wait().
  // Every rank must POST async collectives in the same order it would call
  // the blocking twins; completion order is free. Results are bit-identical
  // to the blocking algorithms and generate identical wire traffic. On the
  // reference backend they degrade to the blocking implementation (the
  // shared-slot oracle has no split-phase form).

  Request iallreduce_bytes(const void* data, std::size_t nbytes, const Combine& op,
                           std::source_location loc = std::source_location::current());
  template <typename T>
  Request iallreduce(const T& v, ReduceOp op,
                     std::source_location loc = std::source_location::current()) {
    static_assert(std::is_trivially_copyable_v<T>);
    return iallreduce_bytes(&v, sizeof(T), combine_fn<T>(op), loc);
  }

  Request iallgatherv_bytes(const void* data, std::size_t nbytes,
                            std::source_location loc = std::source_location::current());
  template <typename T>
  Request iallgatherv(std::span<const T> v,
                      std::source_location loc = std::source_location::current()) {
    static_assert(std::is_trivially_copyable_v<T>);
    return iallgatherv_bytes(v.data(), v.size_bytes(), loc);
  }
  template <typename T>
  Request iallgatherv(const std::vector<T>& v,
                      std::source_location loc = std::source_location::current()) {
    return iallgatherv(std::span<const T>(v), loc);
  }

  // --- Collectives ---------------------------------------------------------
  // All ranks must call each collective in the same order. Byte-level entry
  // points dispatch on the backend; the typed templates below wrap them. The
  // defaulted source_location captures the user call site for the
  // correctness checker's diagnostics (par/check.h); it is never passed
  // explicitly.

  void barrier(std::source_location loc = std::source_location::current());

  /// In-place broadcast: on the root `buf` is the payload; on every other
  /// rank `buf` is replaced by the root's payload (resized as needed).
  void bcast_bytes(std::vector<std::byte>& buf, int root,
                   std::source_location loc = std::source_location::current());

  /// Gather `nbytes` bytes from every rank; result[r] is rank r's payload.
  /// All ranks must pass the same nbytes (use allgatherv_bytes otherwise).
  std::vector<std::vector<std::byte>> allgather_bytes(
      const void* data, std::size_t nbytes,
      std::source_location loc = std::source_location::current());

  /// Variable-length gather; result[r] is rank r's payload.
  std::vector<std::vector<std::byte>> allgatherv_bytes(
      const void* data, std::size_t nbytes,
      std::source_location loc = std::source_location::current());

  /// Personalized all-to-all; sendbufs[d] goes to rank d, result[s] came from s.
  std::vector<std::vector<std::byte>> alltoall_bytes(
      std::vector<std::vector<std::byte>> sendbufs,
      std::source_location loc = std::source_location::current());

  /// All ranks end with the reduction over every rank's `inout` contribution.
  void allreduce_bytes(void* inout, std::size_t nbytes, const Combine& op,
                       std::source_location loc = std::source_location::current());

  /// The root ends with the reduction; other ranks' `inout` is unchanged.
  void reduce_bytes(void* inout, std::size_t nbytes, int root, const Combine& op,
                    std::source_location loc = std::source_location::current());

  /// Exclusive scan: `prefix` must arrive holding the identity value and ends
  /// holding the fold of ranks [0, rank) contributions (`mine`).
  void exscan_bytes(const void* mine, void* prefix, std::size_t nbytes, const Combine& op,
                    std::source_location loc = std::source_location::current());

  /// Gather one fixed-size value per rank.
  template <typename T>
  std::vector<T> allgather(const T& v,
                           std::source_location loc = std::source_location::current()) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto raw = allgather_bytes(&v, sizeof(T), loc);
    std::vector<T> out(raw.size());
    for (std::size_t r = 0; r < raw.size(); ++r) std::memcpy(&out[r], raw[r].data(), sizeof(T));
    return out;
  }

  /// Gather a variable-length array from every rank; result[r] = rank r's array.
  template <typename T>
  std::vector<std::vector<T>> allgatherv(
      std::span<const T> v, std::source_location loc = std::source_location::current()) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto raw = allgatherv_bytes(v.data(), v.size_bytes(), loc);
    std::vector<std::vector<T>> out(raw.size());
    for (std::size_t r = 0; r < raw.size(); ++r) {
      out[r].resize(raw[r].size() / sizeof(T));
      if (!out[r].empty()) std::memcpy(out[r].data(), raw[r].data(), raw[r].size());
    }
    return out;
  }
  template <typename T>
  std::vector<std::vector<T>> allgatherv(
      const std::vector<T>& v, std::source_location loc = std::source_location::current()) {
    return allgatherv(std::span<const T>(v), loc);
  }

  template <typename T>
  T allreduce(T v, ReduceOp op, std::source_location loc = std::source_location::current()) {
    static_assert(std::is_trivially_copyable_v<T>);
    allreduce_bytes(&v, sizeof(T), combine_fn<T>(op), loc);
    return v;
  }

  /// Reduction to one root (binomial tree on the p2p backend). Returns the
  /// reduced value on the root and the rank's own `v` elsewhere.
  template <typename T>
  T reduce(T v, ReduceOp op, int root,
           std::source_location loc = std::source_location::current()) {
    static_assert(std::is_trivially_copyable_v<T>);
    reduce_bytes(&v, sizeof(T), root, combine_fn<T>(op), loc);
    return v;
  }

  /// Exclusive prefix sum; rank 0 receives T{} (zero).
  template <typename T>
  T exscan_sum(T v, std::source_location loc = std::source_location::current()) {
    static_assert(std::is_trivially_copyable_v<T>);
    T out{};
    exscan_bytes(&v, &out, sizeof(T), combine_fn<T>(ReduceOp::sum), loc);
    return out;
  }

  template <typename T>
  T bcast(const T& v, int root, std::source_location loc = std::source_location::current()) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> buf(sizeof(T));
    std::memcpy(buf.data(), &v, sizeof(T));
    bcast_bytes(buf, root, loc);
    T out;
    std::memcpy(&out, buf.data(), sizeof(T));
    return out;
  }

  template <typename T>
  std::vector<T> bcast_vector(const std::vector<T>& v, int root,
                              std::source_location loc = std::source_location::current()) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> buf(v.size() * sizeof(T));
    if (!v.empty()) std::memcpy(buf.data(), v.data(), buf.size());
    bcast_bytes(buf, root, loc);
    std::vector<T> out(buf.size() / sizeof(T));
    if (!out.empty()) std::memcpy(out.data(), buf.data(), buf.size());
    return out;
  }

  /// Typed personalized all-to-all: send[d] goes to rank d; result[s] from rank s.
  template <typename T>
  std::vector<std::vector<T>> alltoallv(
      const std::vector<std::vector<T>>& send,
      std::source_location loc = std::source_location::current()) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::vector<std::byte>> raw(send.size());
    for (std::size_t d = 0; d < send.size(); ++d) {
      raw[d].resize(send[d].size() * sizeof(T));
      if (!send[d].empty()) std::memcpy(raw[d].data(), send[d].data(), raw[d].size());
    }
    auto got = alltoall_bytes(std::move(raw), loc);
    std::vector<std::vector<T>> out(got.size());
    for (std::size_t s = 0; s < got.size(); ++s) {
      out[s].resize(got[s].size() / sizeof(T));
      if (!out[s].empty()) std::memcpy(out[s].data(), got[s].data(), got[s].size());
    }
    return out;
  }

  // --- Observability --------------------------------------------------------

  /// This rank's counters (mutable: callers may reset() between phases).
  CommStats& stats();
  const CommStats& stats() const;

  /// Collective: gather every rank's counters. The snapshot exchange itself
  /// is not counted. All ranks must call it together.
  CommStatsSnapshot stats_snapshot();

  /// The world's correctness checker, or nullptr when checking is off. Used
  /// by the annotation helpers in par/check.h (RegionGuard, note_access).
  check::Checker* checker() const noexcept { return checker_; }

  /// The section's fault-injection configuration (RunOptions::inject). The
  /// checkpoint writer consults it for seeded disk faults.
  const InjectConfig& inject_config() const noexcept;

  /// True when message-integrity envelopes are on (RunOptions::integrity).
  bool integrity() const noexcept { return integrity_; }

 private:
  template <typename T>
  static Combine combine_fn(ReduceOp op) {
    return [op](void* acc_p, const void* in_p) {
      T acc, in;
      std::memcpy(&acc, acc_p, sizeof(T));
      std::memcpy(&in, in_p, sizeof(T));
      switch (op) {
        case ReduceOp::sum: acc = static_cast<T>(acc + in); break;
        case ReduceOp::min: acc = in < acc ? in : acc; break;
        case ReduceOp::max: acc = acc < in ? in : acc; break;
        case ReduceOp::logical_or: acc = static_cast<T>(acc || in); break;
        case ReduceOp::logical_and: acc = static_cast<T>(acc && in); break;
      }
      std::memcpy(acc_p, &acc, sizeof(T));
    };
  }

  // Implemented in comm.cc.
  void send_impl(bool coll, int dest, int tag, Buffer payload);
  Message recv_impl(bool coll, int source, int tag, const char* what, check::Site site);
  /// Nonblocking matching scan of the mailbox; true (and *out filled) when a
  /// visible matching message was consumed. No blocking, no wait publishing.
  bool try_recv_impl(bool coll, int source, int tag, Message* out);
  // Request plumbing (comm.cc): one nonblocking progress attempt, blocking
  /// completion, and the destructor's non-throwing drain.
  bool req_test(detail::RequestState& st);
  void req_wait(detail::RequestState& st);
  void req_drop(detail::RequestState& st) noexcept;
  void perturb();
  void maybe_kill();
  /// Verify a received message's integrity envelope; counts bytes_verified /
  /// corrupt_detected. On mismatch with ARQ active, repairs the payload in
  /// place from the sender's retained copy under a bounded seeded-backoff
  /// retransmission loop; throws CorruptMessage only when ARQ is off or the
  /// budget is exhausted. A verified message acks (releases) the retained
  /// payload. `what` names the operation (recv / collective).
  void verify_envelope(Message& m, const char* what);
  /// True when the link-level ARQ layer is active (integrity + arq.enabled).
  bool arq_active() const noexcept;
  /// Stamp (and possibly corrupt, under injection) a reference-backend shared
  /// buffer this rank just wrote; the seal travels through the World.
  void seal_shared(std::vector<std::byte>& buf, Seal& seal);
  /// Verify a shared buffer written by `writer` against its seal.
  void verify_shared(const std::vector<std::byte>& buf, const Seal& seal, int writer,
                     const char* what);

  // Collective plumbing and algorithms, implemented in collectives.cc.
  /// `invariant` is the fingerprint component every rank must agree on (the
  /// payload size where the collective's contract makes it rank-invariant,
  /// 0 otherwise); `root` likewise for rooted collectives.
  void coll_begin(Coll kind, std::size_t payload_bytes, std::uint64_t invariant, int root,
                  check::Site site);
  /// Level-2 result pass: CRC the rank-invariant collective result and
  /// cross-check it through the ledger (no-op below ESAMR_CHECK=2).
  void coll_check_result(const void* data, std::size_t nbytes);
  void coll_check_result(const std::vector<std::vector<std::byte>>& parts);
  /// As above with an explicit collective sequence number and site — async
  /// collectives complete out of lockstep, so they carry their own seq.
  void coll_check_result_at(std::uint64_t seq, check::Site site, const void* data,
                            std::size_t nbytes);
  void coll_check_result_at(std::uint64_t seq, check::Site site,
                            const std::vector<std::vector<std::byte>>& parts);
  int coll_tag(int round) const;
  void send_coll(int dest, int round, const void* data, std::size_t nbytes);
  Message recv_coll(int source, int round, Coll kind);
  /// Tag-base-explicit variants used by the split-phase async collectives
  /// (the member coll_tag_base_ may have moved on to a later collective).
  void send_coll_at(int tag_base, int dest, int round, const void* data, std::size_t nbytes);
  Message recv_coll_at(int tag_base, int source, int round, Coll kind, check::Site site);
  bool try_recv_coll_at(int tag_base, int source, int round, Coll kind, Message* out);

  std::vector<std::vector<std::byte>> ref_gather(const void* data, std::size_t nbytes, bool count);
  std::vector<std::vector<std::byte>> p2p_rd_allgather(const void* data, std::size_t nbytes);
  std::vector<std::vector<std::byte>> p2p_ring_allgatherv(const void* data, std::size_t nbytes,
                                                          Coll kind);
  void ref_bcast(std::vector<std::byte>& buf, int root);
  void p2p_binomial_bcast(std::vector<std::byte>& buf, int root);
  void ref_reduce(void* inout, std::size_t nbytes, int root, const Combine& op);
  void p2p_binomial_reduce(void* inout, std::size_t nbytes, int root, const Combine& op);
  void ref_allreduce(void* inout, std::size_t nbytes, const Combine& op);
  void p2p_rd_allreduce(void* inout, std::size_t nbytes, const Combine& op);
  void ref_exscan(const void* mine, void* prefix, std::size_t nbytes, const Combine& op);
  void p2p_chain_exscan(const void* mine, void* prefix, std::size_t nbytes, const Combine& op);
  std::vector<std::vector<std::byte>> ref_alltoall(std::vector<std::vector<std::byte>> sendbufs);
  std::vector<std::vector<std::byte>> p2p_alltoall(std::vector<std::vector<std::byte>> sendbufs);

  friend struct detail::RequestState;
  friend struct detail::CollOp;
  friend class Request;

  World* world_;
  int rank_;
  check::Checker* checker_ = nullptr;  ///< cached; null = checking off
  check::Site coll_site_{};     ///< user call site of the collective in progress
  bool slow_rank_ = false;      ///< seeded per-rank slowdown selection
  bool kill_rank_ = false;      ///< seeded rank-kill victim selection
  bool integrity_ = true;       ///< cached RunOptions::integrity
  int coll_tag_base_ = 0;       ///< tag base of the collective in progress
  std::uint64_t coll_seq_ = 0;  ///< collectives issued (lockstep across ranks)
  std::uint64_t op_seq_ = 0;    ///< perturbation stream position
  std::uint64_t kill_op_seq_ = 0;        ///< comm ops counted toward the kill
  std::uint64_t shared_seq_ = 0;         ///< shared-slot writes (corruption stream)
  std::vector<std::uint64_t> send_seq_;  ///< per-destination send counters
};

/// Launch an SPMD section: `fn(comm)` runs once per rank on its own thread.
/// Exceptions thrown by any rank are re-thrown (first one) after all join.
void run(int nranks, const RunOptions& opts, const std::function<void(Comm&)>& fn);

/// As above with default options (ESAMR_COMM_BACKEND may override backend).
void run(int nranks, const std::function<void(Comm&)>& fn);

/// SPMD section that collects a per-rank result; result[r] is rank r's return.
template <typename R>
std::vector<R> run_collect(int nranks, const RunOptions& opts, const std::function<R(Comm&)>& fn) {
  std::vector<R> out(static_cast<std::size_t>(nranks));
  run(nranks, opts, [&](Comm& c) { out[static_cast<std::size_t>(c.rank())] = fn(c); });
  return out;
}

template <typename R>
std::vector<R> run_collect(int nranks, const std::function<R(Comm&)>& fn) {
  std::vector<R> out(static_cast<std::size_t>(nranks));
  run(nranks, [&](Comm& c) { out[static_cast<std::size_t>(c.rank())] = fn(c); });
  return out;
}

/// CPU time consumed by the calling thread, in seconds. Used as the scaling
/// metric so that timesharing P rank-threads over one physical core does not
/// pollute per-rank cost measurements (see DESIGN.md).
double thread_cpu_seconds();

/// Monotonic wall-clock time in seconds.
double wall_seconds();

}  // namespace esamr::par
