// esamr::par — in-process SPMD message-passing runtime.
//
// This is the MPI substitute for the reproduction (see DESIGN.md): P "ranks"
// run as threads inside one process and communicate exclusively through the
// Comm interface below — buffered tagged point-to-point messages plus the
// small set of collectives the forest algorithms need (barrier, bcast,
// allgather(v), allreduce, exclusive scan, alltoallv). Algorithms written
// against Comm are structured exactly as they would be against MPI: all
// octant/element storage is rank-local and every exchange is explicit.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace esamr::par {

/// Wildcard for Comm::recv / Comm::iprobe source matching.
inline constexpr int any_source = -1;
/// Wildcard for Comm::recv / Comm::iprobe tag matching.
inline constexpr int any_tag = -1;

/// Reduction operators for Comm::allreduce.
enum class ReduceOp { sum, min, max, logical_or, logical_and };

/// A received point-to-point message: envelope plus raw payload bytes.
struct Message {
  int source = any_source;
  int tag = any_tag;
  std::vector<std::byte> data;

  /// Reinterpret the payload as an array of trivially copyable T.
  template <typename T>
  std::vector<T> as() const {
    static_assert(std::is_trivially_copyable_v<T>);
    if (data.size() % sizeof(T) != 0) {
      throw std::runtime_error("par::Message::as: size not a multiple of element size");
    }
    std::vector<T> out(data.size() / sizeof(T));
    if (!out.empty()) std::memcpy(out.data(), data.data(), data.size());
    return out;
  }

  /// Reinterpret the payload as exactly one T.
  template <typename T>
  T value() const {
    auto v = as<T>();
    if (v.size() != 1) {
      throw std::runtime_error("par::Message::value: payload is not a single element");
    }
    return v[0];
  }
};

class World;

/// Per-rank communicator handle. One Comm per rank thread; methods are only
/// ever invoked by the owning rank's thread (SPMD style).
class Comm {
 public:
  Comm(World* world, int rank) : world_(world), rank_(rank) {}

  int rank() const noexcept { return rank_; }
  int size() const noexcept;

  // --- Point-to-point -----------------------------------------------------
  // Sends are buffered and never block; receives block until a matching
  // message (by source and tag, wildcards allowed) is available.

  void send_bytes(int dest, int tag, const void* data, std::size_t nbytes);

  template <typename T>
  void send(int dest, int tag, std::span<const T> payload) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag, payload.data(), payload.size_bytes());
  }
  template <typename T>
  void send(int dest, int tag, const std::vector<T>& payload) {
    send(dest, tag, std::span<const T>(payload));
  }
  template <typename T>
  void send_value(int dest, int tag, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag, &v, sizeof(T));
  }

  /// Blocking receive of the first message matching (source, tag).
  Message recv(int source = any_source, int tag = any_tag);

  /// Non-blocking test for a matching message.
  bool iprobe(int source = any_source, int tag = any_tag);

  // --- Collectives ---------------------------------------------------------
  // All ranks must call each collective in the same order.

  void barrier();

  /// Gather `nbytes` bytes from every rank; result[r] is rank r's payload.
  std::vector<std::vector<std::byte>> allgather_bytes(const void* data, std::size_t nbytes);

  /// Personalized all-to-all; sendbufs[d] goes to rank d, result[s] came from s.
  std::vector<std::vector<std::byte>> alltoall_bytes(std::vector<std::vector<std::byte>> sendbufs);

  /// Gather one fixed-size value per rank.
  template <typename T>
  std::vector<T> allgather(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto raw = allgather_bytes(&v, sizeof(T));
    std::vector<T> out(raw.size());
    for (std::size_t r = 0; r < raw.size(); ++r) std::memcpy(&out[r], raw[r].data(), sizeof(T));
    return out;
  }

  /// Gather a variable-length array from every rank; result[r] = rank r's array.
  template <typename T>
  std::vector<std::vector<T>> allgatherv(std::span<const T> v) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto raw = allgather_bytes(v.data(), v.size_bytes());
    std::vector<std::vector<T>> out(raw.size());
    for (std::size_t r = 0; r < raw.size(); ++r) {
      out[r].resize(raw[r].size() / sizeof(T));
      if (!out[r].empty()) std::memcpy(out[r].data(), raw[r].data(), raw[r].size());
    }
    return out;
  }
  template <typename T>
  std::vector<std::vector<T>> allgatherv(const std::vector<T>& v) {
    return allgatherv(std::span<const T>(v));
  }

  template <typename T>
  T allreduce(T v, ReduceOp op) {
    auto all = allgather(v);
    T acc = all[0];
    for (std::size_t r = 1; r < all.size(); ++r) {
      switch (op) {
        case ReduceOp::sum: acc = static_cast<T>(acc + all[r]); break;
        case ReduceOp::min: acc = all[r] < acc ? all[r] : acc; break;
        case ReduceOp::max: acc = acc < all[r] ? all[r] : acc; break;
        case ReduceOp::logical_or: acc = static_cast<T>(acc || all[r]); break;
        case ReduceOp::logical_and: acc = static_cast<T>(acc && all[r]); break;
      }
    }
    return acc;
  }

  /// Exclusive prefix sum; rank 0 receives T{} (zero).
  template <typename T>
  T exscan_sum(T v) {
    auto all = allgather(v);
    T acc{};
    for (int r = 0; r < rank_; ++r) acc = static_cast<T>(acc + all[r]);
    return acc;
  }

  template <typename T>
  T bcast(const T& v, int root) {
    return allgather(v)[root];
  }

  template <typename T>
  std::vector<T> bcast_vector(const std::vector<T>& v, int root) {
    return allgatherv(std::span<const T>(v))[root];
  }

  /// Typed personalized all-to-all: send[d] goes to rank d; result[s] from rank s.
  template <typename T>
  std::vector<std::vector<T>> alltoallv(const std::vector<std::vector<T>>& send) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::vector<std::byte>> raw(send.size());
    for (std::size_t d = 0; d < send.size(); ++d) {
      raw[d].resize(send[d].size() * sizeof(T));
      if (!send[d].empty()) std::memcpy(raw[d].data(), send[d].data(), raw[d].size());
    }
    auto got = alltoall_bytes(std::move(raw));
    std::vector<std::vector<T>> out(got.size());
    for (std::size_t s = 0; s < got.size(); ++s) {
      out[s].resize(got[s].size() / sizeof(T));
      if (!out[s].empty()) std::memcpy(out[s].data(), got[s].data(), got[s].size());
    }
    return out;
  }

 private:
  World* world_;
  int rank_;
};

/// Launch an SPMD section: `fn(comm)` runs once per rank on its own thread.
/// Exceptions thrown by any rank are re-thrown (first one) after all join.
void run(int nranks, const std::function<void(Comm&)>& fn);

/// SPMD section that collects a per-rank result; result[r] is rank r's return.
template <typename R>
std::vector<R> run_collect(int nranks, const std::function<R(Comm&)>& fn) {
  std::vector<R> out(static_cast<std::size_t>(nranks));
  run(nranks, [&](Comm& c) { out[static_cast<std::size_t>(c.rank())] = fn(c); });
  return out;
}

/// CPU time consumed by the calling thread, in seconds. Used as the scaling
/// metric so that timesharing P rank-threads over one physical core does not
/// pollute per-rank cost measurements (see DESIGN.md).
double thread_cpu_seconds();

/// Monotonic wall-clock time in seconds.
double wall_seconds();

}  // namespace esamr::par
