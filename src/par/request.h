// Internal state behind par::Request (not part of the public API).
//
// A RequestState lives in a shared_ptr owned by the user-facing Request
// handle. It is only ever touched by the owning rank's thread (SPMD style),
// so no locking is needed; cross-rank effects go through the mailboxes.
//
// Async collectives are split-phase state machines (CollOp): the collective
// slot (sequence number, tag base, checker fingerprint) is claimed at POST
// time — which is why every rank must post async collectives in program
// order — and the remaining algorithm rounds advance inside test()/wait()
// via nonblocking (or, in wait, blocking) receives on the captured tag base.
#pragma once

#include <memory>
#include <vector>

#include "par/comm.h"

namespace esamr::par::detail {

/// Split-phase collective state machine. step() advances as far as message
/// availability allows; with may_block it finishes outright.
struct CollOp {
  virtual ~CollOp() = default;
  /// Returns true when the collective has fully completed.
  virtual bool step(Comm& c, RequestState& st, bool may_block) = 0;

 protected:
  // Forwarders into Comm's private split-phase plumbing (CollOp is a friend
  // of Comm; its concrete subclasses in collectives.cc are not).
  static void send_at(Comm& c, int tag_base, int dest, int round, const void* data,
                      std::size_t nbytes);
  static Message recv_at(Comm& c, int tag_base, int source, int round, Coll kind,
                         check::Site site);
  static bool try_recv_at(Comm& c, int tag_base, int source, int round, Coll kind, Message* out);
  static void check_result_at(Comm& c, std::uint64_t seq, check::Site site, const void* data,
                              std::size_t nbytes);
  static void check_result_at(Comm& c, std::uint64_t seq, check::Site site,
                              const std::vector<std::vector<std::byte>>& parts);
};

struct RequestState {
  enum class Kind { send, recv, coll };
  Kind kind = Kind::recv;
  Comm* comm = nullptr;
  bool done = false;

  // send: the runtime's reference to the payload storage while in flight,
  // and the checker's in-flight region id (0 = none registered).
  Buffer held;
  std::uint64_t inflight_id = 0;

  // recv: envelope registered at post time; msg filled at completion. The
  // post-time call site doubles as the wait's diagnostic site.
  int source = any_source;
  int tag = any_tag;
  check::Site site{};
  Message msg;

  // coll: the state machine plus its results. `result` is the iallreduce
  // accumulator (bit-identical to the blocking twin's inout evolution);
  // `parts` is the iallgatherv per-rank payload array.
  std::unique_ptr<CollOp> coll;
  std::vector<std::byte> result;
  std::vector<std::vector<std::byte>> parts;
};

}  // namespace esamr::par::detail
