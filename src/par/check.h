// esamr::par::check — opt-in SPMD correctness checker for the runtime.
//
// The forest algorithms are correct only under a strict SPMD discipline:
// every rank issues the same collectives in the same order with agreeing
// arguments, and no mutable state crosses rank boundaries except through
// messages. Because ranks are threads in one address space, violations of
// that discipline (cross-rank aliasing, divergent collective sequences, tag
// deadlocks) are easier to introduce here than under real MPI and harder to
// catch — TSan sees the data race only after the aliasing bug corrupted a
// result, and a tag cycle is a silent hang until the timeout. This layer
// (the in-process analogue of MUST-style MPI checkers) turns all three
// classes into immediate structured diagnostics:
//
//   1. Happens-before race detection. Every rank carries a vector clock
//      advanced by each send/recv/barrier (collective-internal messages
//      included, so the p2p backend's trees contribute precise edges).
//      Algorithm code declares rank-owned memory regions via the RAII
//      RegionGuard and annotates cross-rank-visible accesses with
//      note_access(); an access to another rank's region that is not
//      ordered after the owner's registration by a happens-before edge is
//      reported with both call sites.
//
//   2. Collective-matching verification. Every collective records a
//      fingerprint (kind, call site, rank-invariant payload size, root)
//      into a lock-free per-world ledger indexed by the collective sequence
//      number; the first rank to arrive publishes, every other rank
//      cross-checks. Divergent control flow — half the ranks in allreduce,
//      half in allgather — is reported naming both call sites instead of
//      corrupting tag streams. At level 2 the checker additionally CRCs the
//      rank-invariant *result* of bcast/allreduce/allgather(v) through the
//      same ledger, catching non-deterministic combiners and slot
//      corruption.
//
//   3. Deadlock diagnosis. Blocked receives and barriers publish wait-for
//      edges; a periodic detector freezes the world (all mailbox locks in
//      canonical order), runs a releasability fixpoint over the wait-for
//      graph, and — before any configured timeout fires — reports the full
//      stuck cycle (rank, peer, tag, call site per member).
//
// Enabling: RunOptions::check = 1 or 2, or ESAMR_CHECK=1|2 in the
// environment (RunOptions::check = 0 overrides the environment to off).
// When disabled the entire layer costs one branch on a cached null pointer
// per comm operation; no allocation, no locking.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <source_location>
#include <stdexcept>
#include <string>
#include <vector>

namespace esamr::par {

class Comm;
class World;
struct Message;

namespace check {

/// A recorded call site for diagnostics. The pointers are the string
/// literals baked into the binary by std::source_location, so copies are
/// trivially cheap and compare stably across rank threads.
struct Site {
  const char* file = "?";
  std::uint32_t line = 0;
  const char* func = "?";

  static Site of(const std::source_location& loc) {
    return Site{loc.file_name(), loc.line(), loc.function_name()};
  }
  /// "file:line (function)" — file reduced to its basename.
  std::string str() const;
};

/// The violation classes the checker reports.
enum class Violation { race, collective_mismatch, deadlock };

const char* violation_name(Violation v);

/// Thrown (from the detecting rank) when a detector fires. Like any rank
/// error it poisons the world, so peers unwind and par::run rethrows it.
class CheckError : public std::runtime_error {
 public:
  CheckError(Violation kind, std::vector<int> ranks, const std::string& what)
      : std::runtime_error(what), kind_(kind), ranks_(std::move(ranks)) {}
  Violation kind() const noexcept { return kind_; }
  /// The ranks implicated in the violation, sorted ascending.
  const std::vector<int>& ranks() const noexcept { return ranks_; }

 private:
  Violation kind_;
  std::vector<int> ranks_;
};

/// Thrown by ESAMR_ASSERT (active in every build type) when a comm payload
/// invariant is violated; names the rank and the failing call site.
class AssertError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

[[noreturn]] void assert_fail(const char* expr, const char* file, unsigned line, int rank,
                              const std::string& msg);

/// Comm payload invariant check that stays active in Release builds: on
/// failure throws check::AssertError naming the rank (-1 = not rank
/// specific) and the call site instead of aborting the process.
#define ESAMR_ASSERT(cond, rank, msg)                                              \
  (static_cast<bool>(cond)                                                         \
       ? static_cast<void>(0)                                                      \
       : ::esamr::par::check::assert_fail(#cond, __FILE__, __LINE__, (rank), (msg)))

// ---------------------------------------------------------------------------
// Checker — one per World, shared by all rank threads. Comm caches a raw
// pointer (null when checking is off) so every hook is a single branch.
// ---------------------------------------------------------------------------

/// Collective fingerprint compared across ranks (detector 2). `invariant`
/// carries the rank-invariant payload size where the API contracts one
/// (reduce/allreduce/exscan/allgather) and 0 elsewhere; for the level-2
/// result pass it carries the result CRC.
struct Fingerprint {
  std::uint8_t kind = 0;       ///< par::Coll, or 0xff for a result-CRC pass
  std::int16_t root = -1;      ///< root rank for rooted collectives
  std::uint64_t invariant = 0; ///< rank-invariant size / result CRC
  std::uint64_t site_hash = 0; ///< hash of (file, line)
  Site site{};                 ///< for diagnostics only (not compared)

  bool agrees(const Fingerprint& o) const {
    return kind == o.kind && root == o.root && invariant == o.invariant &&
           site_hash == o.site_hash;
  }
};

class Checker {
 public:
  Checker(int nranks, int level);

  int level() const noexcept { return level_; }
  int nranks() const noexcept { return nranks_; }

  // --- Vector clocks (detector 1 plumbing). All clock mutation happens on
  // the owning rank's thread; cross-thread reads go through snapshots taken
  // under regions_m_ / the barrier generation table.
  void on_send(int src, Message& msg);
  void on_recv(int rank, const Message& msg);
  /// Barrier hooks, called from World::barrier_wait around the wait: arrive
  /// merges the rank's clock into the generation entry, depart joins the
  /// completed generation clock back (a barrier is a full synchronization).
  void barrier_arrive(int rank);
  void barrier_depart(int rank);

  // --- Rank-owned region registry (detector 1).
  /// Returns an id for unregister_region. Re-registering an overlapping
  /// range refreshes the happens-before anchor to the owner's current clock.
  std::uint64_t register_region(int rank, const void* ptr, std::size_t nbytes, const char* name,
                                Site site);
  void unregister_region(std::uint64_t id);
  /// Report `rank` touching [ptr, ptr+nbytes). Throws CheckError(race) if
  /// the range overlaps another rank's region and the owner's registration
  /// does not happen-before this access.
  void access(int rank, const void* ptr, std::size_t nbytes, bool write, Site site);

  // --- Buffer-ownership transfer (detector 1, async runtime). An isend
  // moves the payload storage into the runtime: from post to Request
  // completion the range is an *in-flight* region. Reads stay legal (the
  // payload is immutable and receivers may view it in place), but ANY write
  // — even by the posting rank, even one ordered by happens-before — is a
  // diagnosed race, because the runtime and the receiver hold live views of
  // the bytes. Completion (wait/test/drain) hands ownership back.
  std::uint64_t begin_inflight(int rank, const void* ptr, std::size_t nbytes, Site site);
  void end_inflight(std::uint64_t id);

  // --- Collective ledger (detector 2).
  /// Cross-check `fp` for this rank's `seq`-th collective against the other
  /// ranks. Throws CheckError(collective_mismatch) naming both call sites.
  /// `result_pass` selects the level-2 result-CRC ledger lane; `world` (may
  /// be null) lets the ledger spin respect poisoning.
  void collective(int rank, std::uint64_t seq, const Fingerprint& fp, bool result_pass = false,
                  const World* world = nullptr);

  // --- Wait-for graph (detector 3). Publish/clear the calling rank's
  // blocked state; detect() may be called periodically while blocked.
  void block_recv(int rank, bool coll_plane, int source, int tag, Site site);
  void block_barrier(int rank, Site site);
  void unblock(int rank);
  /// Mark a rank's SPMD function as returned (a terminated rank can never
  /// send, so it does not count as "running" in the fixpoint).
  void on_rank_done(int rank);
  /// Freeze the world (every mailbox lock in canonical order) and run the
  /// releasability fixpoint. Throws CheckError(deadlock) from the calling
  /// rank when it is a member of a provably stuck set.
  void detect(int rank, World& world);

  /// CRC32C (Castagnoli), software table — used for the level-2 result pass.
  static std::uint32_t crc32c(const void* data, std::size_t nbytes);

 private:
  struct Region {
    std::uint64_t id = 0;
    int owner = -1;
    const char* name = "";
    std::uintptr_t lo = 0, hi = 0;
    std::vector<std::uint32_t> clk;  ///< owner's clock at registration
    Site site{};
    bool inflight = false;  ///< runtime-owned isend payload: every write races
  };

  struct BarrierGen {
    std::vector<std::uint32_t> clk;
    int arrived = 0;
    int departed = 0;
  };

  /// One rank's published blocked state, mutated only under graph_m_.
  struct BlockState {
    enum Kind : int { none = 0, recv = 1, barrier = 2 };
    int kind = none;
    bool coll_plane = false;
    int source = -2;
    int tag = -2;
    std::uint64_t barrier_gen = 0;  ///< generation the rank is waiting on
    Site site{};
  };

  /// Lock-free ledger slot (detector 2): claimed by the first rank to reach
  /// a given key via CAS on `key`, compared by every other rank, recycled by
  /// whoever completes the P-th check-in.
  struct alignas(64) Slot {
    static constexpr std::uint64_t empty = ~std::uint64_t{0};
    std::atomic<std::uint64_t> key{empty};
    std::atomic<int> ready{0};
    std::atomic<int> done{0};
    int writer_rank = -1;
    Fingerprint fp{};
  };
  static constexpr std::size_t ledger_slots = 4096;

  void ledger_check(int rank, std::uint64_t key, const Fingerprint& fp, const World* world);
  std::string describe_wait(int r, const BlockState& b) const;

  const int nranks_;
  const int level_;

  // Vector clocks: clocks_[r] is only written by rank r's thread.
  std::vector<std::vector<std::uint32_t>> clocks_;

  std::mutex regions_m_;
  std::vector<Region> regions_;
  std::uint64_t next_region_id_ = 1;

  std::mutex graph_m_;
  std::vector<BlockState> blocked_;
  std::vector<std::uint64_t> barrier_seq_;  ///< barriers each rank entered
  std::vector<char> done_;                  ///< rank fn returned
  std::map<std::uint64_t, BarrierGen> barrier_gens_;

  std::vector<Slot> ledger_;
};

/// The effective check level for `opts_check` (RunOptions::check) combined
/// with the ESAMR_CHECK environment variable: an explicit 0/1/2 wins,
/// -1 defers to the environment (absent/empty/0 = off).
int effective_level(int opts_check);

// --- User-facing annotation API (no-ops when checking is off) --------------

/// True if the comm's world runs with checking enabled.
bool enabled(const Comm& comm);

/// RAII declaration of a rank-owned memory region: the forest leaf arrays,
/// field vectors, and shared collective slots register themselves around
/// communication phases so detector 1 can attribute accesses.
class RegionGuard {
 public:
  RegionGuard() = default;
  RegionGuard(Comm& comm, const void* ptr, std::size_t nbytes, const char* name,
              std::source_location loc = std::source_location::current());
  RegionGuard(const RegionGuard&) = delete;
  RegionGuard& operator=(const RegionGuard&) = delete;
  RegionGuard(RegionGuard&& o) noexcept : checker_(o.checker_), id_(o.id_) {
    o.checker_ = nullptr;
    o.id_ = 0;
  }
  RegionGuard& operator=(RegionGuard&& o) noexcept;
  ~RegionGuard();

 private:
  Checker* checker_ = nullptr;
  std::uint64_t id_ = 0;
};

/// Annotate a read (write = false) or write of [ptr, ptr+nbytes) by the
/// calling rank. No-op when checking is off.
void note_access(Comm& comm, const void* ptr, std::size_t nbytes, bool write,
                 std::source_location loc = std::source_location::current());

}  // namespace check
}  // namespace esamr::par
