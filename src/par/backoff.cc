#include "par/backoff.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "par/inject.h"

namespace esamr::par {

double SeededBackoff::next_sleep_s() {
  if (!enabled()) return 0.0;
  const double u = 2.0 * detail::unit_hash(key_, attempt_, 0) - 1.0;
  const double sleep_s = nominal_ * (1.0 + policy_.jitter * u);
  nominal_ = std::min(nominal_ * policy_.factor, policy_.cap_s);
  ++attempt_;
  return sleep_s;
}

double SeededBackoff::sleep() {
  const double s = next_sleep_s();
  detail::sleep_s(s);
  return s;
}

namespace detail {

void sleep_s(double seconds) {
  if (seconds > 0.0) std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

void sleep_us(double micros) {
  if (micros > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::micro>(micros));
  }
}

}  // namespace detail

}  // namespace esamr::par
