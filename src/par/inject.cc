#include "par/inject.h"

namespace esamr::par::detail {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double unit_hash(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  const std::uint64_t h = mix64(mix64(seed ^ mix64(a)) ^ b);
  return static_cast<double>(h >> 11) * 0x1.0p-53;  // top 53 bits -> [0, 1)
}

bool is_slow_rank(const InjectConfig& cfg, int rank) {
  if (!cfg.slowdown_enabled()) return false;
  return mix64(cfg.seed ^ 0x51000000ULL ^ static_cast<std::uint64_t>(rank)) %
             static_cast<std::uint64_t>(cfg.slow_rank_stride) ==
         0;
}

bool is_kill_rank(const InjectConfig& cfg, int rank) {
  if (!cfg.kill_enabled()) return false;
  for (const int r : cfg.kill_exempt) {
    if (r == rank) return false;
  }
  return mix64(cfg.seed ^ 0x6b110000ULL ^ static_cast<std::uint64_t>(rank)) %
             static_cast<std::uint64_t>(cfg.kill_rank_stride) ==
         0;
}

double delay_us(const InjectConfig& cfg, int src, int dst, std::uint64_t seq) {
  if (!cfg.delays_enabled()) return 0.0;
  const std::uint64_t pair =
      (static_cast<std::uint64_t>(src) << 32) | static_cast<std::uint64_t>(dst);
  return unit_hash(cfg.seed, pair, seq) * cfg.max_delay_us;
}

double slow_op_sleep_us(const InjectConfig& cfg, int rank, std::uint64_t op_seq) {
  // Jitter around the configured mean: [0.5, 1.5) * slow_op_us.
  return (0.5 + unit_hash(cfg.seed ^ 0xf10ULL, static_cast<std::uint64_t>(rank), op_seq)) *
         cfg.slow_op_us;
}

namespace {

/// The 64-bit selection/kind hash shared by the payload-fault functions.
std::uint64_t payload_hash(const InjectConfig& cfg, int src, int dst, std::uint64_t seq) {
  const std::uint64_t pair =
      (static_cast<std::uint64_t>(src) << 32) | static_cast<std::uint64_t>(dst);
  return mix64(mix64(cfg.seed ^ 0xc0220000ULL ^ mix64(pair)) ^ seq);
}

}  // namespace

const char* payload_fault_name(PayloadFault f) {
  switch (f) {
    case PayloadFault::none: return "none";
    case PayloadFault::bitflip: return "bitflip";
    case PayloadFault::truncate: return "truncate";
    case PayloadFault::duplicate: return "duplicate";
  }
  return "?";
}

PayloadFault payload_fault(const InjectConfig& cfg, int src, int dst, std::uint64_t seq) {
  if (!cfg.corrupt_enabled()) return PayloadFault::none;
  const std::uint64_t h = payload_hash(cfg, src, dst, seq);
  if (h % static_cast<std::uint64_t>(cfg.corrupt_msg_stride) != 0) return PayloadFault::none;
  // The kind comes from independent bits of the same hash.
  switch ((h >> 17) % 3) {
    case 0: return PayloadFault::bitflip;
    case 1: return PayloadFault::truncate;
    default: return PayloadFault::duplicate;
  }
}

PayloadFault corrupt_payload(const InjectConfig& cfg, int src, int dst, std::uint64_t seq,
                             std::vector<std::byte>& data) {
  PayloadFault f = payload_fault(cfg, src, dst, seq);
  if (f == PayloadFault::none) return f;
  const std::uint64_t h = mix64(payload_hash(cfg, src, dst, seq) ^ 0x9a710000ULL);
  const std::uint64_t n = data.size();
  if (n == 0) {
    // Nothing to flip or drop: grow the empty payload by one hashed byte
    // (duplication-style garbage), still caught by the length envelope.
    data.push_back(static_cast<std::byte>(h & 0xff));
    return PayloadFault::duplicate;
  }
  switch (f) {
    case PayloadFault::bitflip: {
      const std::uint64_t pos = h % n;
      data[pos] ^= static_cast<std::byte>(1u << ((h >> 29) % 8));
      break;
    }
    case PayloadFault::truncate: {
      const std::uint64_t drop = 1 + h % n;  // 1..n bytes off the tail
      data.resize(n - drop);
      break;
    }
    case PayloadFault::duplicate: {
      const std::uint64_t len = 1 + h % (n < 64 ? n : 64);
      data.insert(data.end(), data.begin(),
                  data.begin() + static_cast<std::ptrdiff_t>(len));
      break;
    }
    case PayloadFault::none: break;
  }
  return f;
}

const char* disk_fault_name(DiskFault f) {
  switch (f) {
    case DiskFault::none: return "none";
    case DiskFault::torn_tail: return "torn_tail";
    case DiskFault::truncate: return "truncate";
    case DiskFault::eio: return "eio";
  }
  return "?";
}

DiskFault disk_fault(const InjectConfig& cfg, std::uint64_t step, std::uint64_t attempt) {
  if (!cfg.disk_enabled()) return DiskFault::none;
  const std::uint64_t h = mix64(mix64(cfg.seed ^ 0xd15c0000ULL ^ mix64(step)) ^ attempt);
  if (h % static_cast<std::uint64_t>(cfg.disk_fault_stride) != 0) return DiskFault::none;
  switch ((h >> 23) % 3) {
    case 0: return DiskFault::torn_tail;
    case 1: return DiskFault::truncate;
    default: return DiskFault::eio;
  }
}

}  // namespace esamr::par::detail
