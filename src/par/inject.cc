#include "par/inject.h"

namespace esamr::par::detail {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double unit_hash(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  const std::uint64_t h = mix64(mix64(seed ^ mix64(a)) ^ b);
  return static_cast<double>(h >> 11) * 0x1.0p-53;  // top 53 bits -> [0, 1)
}

bool is_slow_rank(const InjectConfig& cfg, int rank) {
  if (!cfg.slowdown_enabled()) return false;
  return mix64(cfg.seed ^ 0x51000000ULL ^ static_cast<std::uint64_t>(rank)) %
             static_cast<std::uint64_t>(cfg.slow_rank_stride) ==
         0;
}

bool is_kill_rank(const InjectConfig& cfg, int rank) {
  if (!cfg.kill_enabled()) return false;
  return mix64(cfg.seed ^ 0x6b110000ULL ^ static_cast<std::uint64_t>(rank)) %
             static_cast<std::uint64_t>(cfg.kill_rank_stride) ==
         0;
}

double delay_us(const InjectConfig& cfg, int src, int dst, std::uint64_t seq) {
  if (!cfg.delays_enabled()) return 0.0;
  const std::uint64_t pair =
      (static_cast<std::uint64_t>(src) << 32) | static_cast<std::uint64_t>(dst);
  return unit_hash(cfg.seed, pair, seq) * cfg.max_delay_us;
}

double slow_op_sleep_us(const InjectConfig& cfg, int rank, std::uint64_t op_seq) {
  // Jitter around the configured mean: [0.5, 1.5) * slow_op_us.
  return (0.5 + unit_hash(cfg.seed ^ 0xf10ULL, static_cast<std::uint64_t>(rank), op_seq)) *
         cfg.slow_op_us;
}

}  // namespace esamr::par::detail
