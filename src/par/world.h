// Internal shared state for one SPMD section (not part of the public API):
// per-rank mailboxes for user and collective-internal traffic, the counting
// barrier, and the shared slot arrays backing the reference collectives.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>

#include "par/check.h"
#include "par/comm.h"

namespace esamr::par {

namespace detail {
/// Thrown inside peer ranks when some rank failed; unwinds them without
/// recording a second error.
struct WorldPoisoned {};
}  // namespace detail

class World {
 public:
  World(int n, RunOptions options)
      : size(n), opts(std::move(options)), mail(static_cast<std::size_t>(n)),
        coll_mail(static_cast<std::size_t>(n)), slots(static_cast<std::size_t>(n)),
        slot_seals(static_cast<std::size_t>(n)), a2a(static_cast<std::size_t>(n)),
        a2a_seals(static_cast<std::size_t>(n)), stats(static_cast<std::size_t>(n)) {
    for (auto& m : mail) m = std::make_unique<Mailbox>(n);
    for (auto& m : coll_mail) m = std::make_unique<Mailbox>(n);
    for (auto& row : a2a) row.resize(static_cast<std::size_t>(n));
    for (auto& row : a2a_seals) row.resize(static_cast<std::size_t>(n));
    if (const int level = check::effective_level(opts.check); level > 0) {
      checker = std::make_unique<check::Checker>(n, level);
    }
  }

  struct Mailbox {
    explicit Mailbox(int nranks) : last_visible(static_cast<std::size_t>(nranks), 0.0) {}
    std::mutex m;
    std::condition_variable cv;
    std::deque<Message> q;
    /// Per-source latest injected visibility time; delivery times are clamped
    /// monotone per (source, this) pair so delays never reorder a pair's
    /// messages (tag-matching semantics are preserved under injection).
    std::vector<double> last_visible;
  };

  /// The barrier primitive shared by Comm::barrier and the reference
  /// collectives. Throws TimeoutError (naming `rank` and the arrival count)
  /// when opts.barrier_timeout_s expires. `site` is the user call site for
  /// the checker's deadlock diagnostics.
  void barrier_wait(int rank, check::Site site = {});

  /// Mark the section failed and wake every blocked rank so it can unwind.
  void poison() {
    poisoned.store(true);
    {
      std::lock_guard<std::mutex> lock(bar_m);
      bar_cv.notify_all();
    }
    for (auto& boxes : {std::ref(mail), std::ref(coll_mail)}) {
      for (auto& box : boxes.get()) {
        std::lock_guard<std::mutex> lock(box->m);
        box->cv.notify_all();
      }
    }
  }

  const int size;
  const RunOptions opts;
  std::vector<std::unique_ptr<Mailbox>> mail;       ///< user point-to-point
  std::vector<std::unique_ptr<Mailbox>> coll_mail;  ///< collective-internal
  std::vector<std::vector<std::byte>> slots;        ///< reference allgather(v)
  std::vector<Seal> slot_seals;                     ///< integrity seals for slots
  std::vector<std::vector<std::vector<std::byte>>> a2a;  ///< [src][dst]
  std::vector<std::vector<Seal>> a2a_seals;              ///< [src][dst]
  std::vector<std::byte> bvec;                           ///< reference bcast
  Seal bvec_seal;                                        ///< integrity seal for bvec
  std::vector<CommStats> stats;                          ///< per rank
  std::unique_ptr<check::Checker> checker;               ///< null = checking off
  std::atomic<bool> poisoned{false};

 private:
  std::mutex bar_m;
  std::condition_variable bar_cv;
  int bar_count = 0;
  long bar_gen = 0;
};

}  // namespace esamr::par
