// Internal shared state for one SPMD section (not part of the public API):
// per-rank mailboxes for user and collective-internal traffic, the counting
// barrier, and the shared slot arrays backing the reference collectives.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "par/check.h"
#include "par/comm.h"

namespace esamr::par {

namespace detail {
/// Thrown inside peer ranks when some rank failed; unwinds them without
/// recording a second error.
struct WorldPoisoned {};

/// Thrown by a rank dying silently (InjectConfig::kill_silent): the run()
/// thread body swallows it without recording an error, poisoning the world,
/// or marking the rank done — the rank just vanishes, exactly like a node
/// dropping off the network. Only the heartbeat detector (or a recv/barrier
/// timeout) can name the resulting failure.
struct SilentDeath {};
}  // namespace detail

class World {
 public:
  World(int n, RunOptions options)
      : size(n), opts(std::move(options)), mail(static_cast<std::size_t>(n)),
        coll_mail(static_cast<std::size_t>(n)), slots(static_cast<std::size_t>(n)),
        slot_seals(static_cast<std::size_t>(n)), a2a(static_cast<std::size_t>(n)),
        a2a_seals(static_cast<std::size_t>(n)), stats(static_cast<std::size_t>(n)),
        retain(static_cast<std::size_t>(n)), hb_last(static_cast<std::size_t>(n)),
        hb_done(static_cast<std::size_t>(n)) {
    for (auto& m : mail) m = std::make_unique<Mailbox>(n);
    for (auto& m : coll_mail) m = std::make_unique<Mailbox>(n);
    for (auto& row : a2a) row.resize(static_cast<std::size_t>(n));
    for (auto& row : a2a_seals) row.resize(static_cast<std::size_t>(n));
    for (auto& box : retain) box = std::make_unique<RetainBox>();
    const double now = wall_seconds();
    for (auto& t : hb_last) t.store(now, std::memory_order_relaxed);
    for (auto& d : hb_done) d.store(false, std::memory_order_relaxed);
    if (const int level = check::effective_level(opts.check); level > 0) {
      checker = std::make_unique<check::Checker>(n, level);
    }
  }

  struct Mailbox {
    explicit Mailbox(int nranks) : last_visible(static_cast<std::size_t>(nranks), 0.0) {}
    std::mutex m;
    std::condition_variable cv;
    std::deque<Message> q;
    /// Per-source latest injected visibility time; delivery times are clamped
    /// monotone per (source, this) pair so delays never reorder a pair's
    /// messages (tag-matching semantics are preserved under injection).
    std::vector<double> last_visible;
  };

  /// A sender-retained clean payload awaiting the receiver's integrity ack
  /// (link-level ARQ; see ArqConfig). `payload` is a zero-copy reference to
  /// the exact sealed buffer — retaining it costs one refcount, not a copy.
  struct RetainEntry {
    Buffer payload;
    Seal seal;
  };

  /// Per-destination retention store, keyed by (source, seq). seq is the
  /// per-(src, dst) post counter shared by the user and collective planes, so
  /// the key is unique per destination. The receiver is the only reader; the
  /// senders to this destination are the writers.
  struct RetainBox {
    std::mutex m;
    std::map<std::pair<int, std::uint64_t>, RetainEntry> entries;
  };

  /// The barrier primitive shared by Comm::barrier and the reference
  /// collectives. Throws TimeoutError (naming `rank` and the arrival count)
  /// when opts.barrier_timeout_s expires. `site` is the user call site for
  /// the checker's deadlock diagnostics.
  void barrier_wait(int rank, check::Site site = {});

  /// Heartbeat failure detection (RunOptions::heartbeat_timeout_s).
  bool hb_armed() const { return opts.heartbeat_timeout_s > 0.0; }
  /// Stamp `rank` alive now. Called from every comm operation and every
  /// slice of a blocked wait; no-op when the detector is disarmed.
  void hb_beat(int rank) {
    if (hb_armed()) {
      hb_last[static_cast<std::size_t>(rank)].store(wall_seconds(), std::memory_order_relaxed);
    }
  }
  /// Mark `rank` cleanly finished (returned from its SPMD function or thrown
  /// a recorded error): it will never beat again and must not be declared
  /// dead. Silent deaths deliberately skip this.
  void hb_mark_done(int rank) {
    if (hb_armed()) hb_done[static_cast<std::size_t>(rank)].store(true, std::memory_order_relaxed);
  }
  /// Scan for a peer silent past the timeout window. Called by `rank` from
  /// inside a sliced blocked wait; `what` names the wait (recv / barrier /
  /// a collective) and `site` is the detector's user call site. Throws a
  /// detected-by-peer RankFailure naming the dead rank, routed through the
  /// same per-rank error channel as injected failures. Implemented in
  /// comm.cc.
  void hb_check(int rank, const char* what, check::Site site);

  /// Mark the section failed and wake every blocked rank so it can unwind.
  void poison() {
    poisoned.store(true);
    {
      std::lock_guard<std::mutex> lock(bar_m);
      bar_cv.notify_all();
    }
    for (auto& boxes : {std::ref(mail), std::ref(coll_mail)}) {
      for (auto& box : boxes.get()) {
        std::lock_guard<std::mutex> lock(box->m);
        box->cv.notify_all();
      }
    }
  }

  const int size;
  const RunOptions opts;
  std::vector<std::unique_ptr<Mailbox>> mail;       ///< user point-to-point
  std::vector<std::unique_ptr<Mailbox>> coll_mail;  ///< collective-internal
  std::vector<std::vector<std::byte>> slots;        ///< reference allgather(v)
  std::vector<Seal> slot_seals;                     ///< integrity seals for slots
  std::vector<std::vector<std::vector<std::byte>>> a2a;  ///< [src][dst]
  std::vector<std::vector<Seal>> a2a_seals;              ///< [src][dst]
  std::vector<std::byte> bvec;                           ///< reference bcast
  Seal bvec_seal;                                        ///< integrity seal for bvec
  std::vector<CommStats> stats;                          ///< per rank
  std::vector<std::unique_ptr<RetainBox>> retain;        ///< ARQ retention, per dest
  std::vector<std::atomic<double>> hb_last;              ///< last heartbeat, per rank
  std::vector<std::atomic<bool>> hb_done;                ///< cleanly finished, per rank
  std::unique_ptr<check::Checker> checker;               ///< null = checking off
  std::atomic<bool> poisoned{false};

 private:
  std::mutex bar_m;
  std::condition_variable bar_cv;
  int bar_count = 0;
  long bar_gen = 0;
};

}  // namespace esamr::par
