// Deterministic fault/perturbation injection for the SPMD runtime.
//
// All perturbation is derived by hashing (seed, stream coordinates): the same
// seed always produces the same delivery delays, the same set of slowed
// ranks, the same corrupted messages, and the same disk faults, independent
// of thread scheduling. Timing injection perturbs *timing* only —
// per-(source, destination) message order is preserved (delivery times are
// clamped monotone per pair), so tag-matching semantics are unchanged and a
// correct deterministic algorithm must produce bit-identical results under
// every seed. That invariant is what tests/test_perturb.cc asserts.
//
// Payload injection models silent data corruption: the seq-th message from
// src to dst (selected by the same (seed, src, dst, seq) hashing as the
// delivery delays) has its bytes bit-flipped, truncated, or duplicated in
// flight. Disk injection models storage faults in the checkpoint commit path
// (torn tail, truncation, transient EIO), selected by (seed, step, attempt).
// Both are meant to be *caught* by the integrity layer (CRC32C message
// envelopes, write-then-reread-verify) rather than tolerated silently; the
// chaos campaign (tests/test_chaos.cc) asserts exactly that.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace esamr::par {

struct InjectConfig {
  /// Master seed; 0 disables all perturbation.
  std::uint64_t seed = 0;
  /// Per-message delivery delay, uniform in [0, max_delay_us) microseconds.
  double max_delay_us = 0.0;
  /// Every stride-th rank (selected by seeded hash) runs slowed; 0 = none.
  int slow_rank_stride = 0;
  /// Mean extra latency per comm operation on a slowed rank, microseconds.
  double slow_op_us = 0.0;
  /// Every stride-th rank (selected by seeded hash, independent of the slow
  /// set) is a kill victim; 0 = none. Victims throw RankFailure from their
  /// kill_after_ops-th comm operation, modelling a one-shot node failure.
  int kill_rank_stride = 0;
  /// Comm operation count (sends, recvs, collectives) after which a victim
  /// rank fails; 0 disables rank-kill even when a stride is set.
  std::uint64_t kill_after_ops = 0;
  /// When true a victim rank dies *silently* — it simply stops participating
  /// (no RankFailure thrown, no world poisoning, no diagnostic) — modelling a
  /// node that drops off the network. Only the heartbeat failure detector
  /// (RunOptions::heartbeat_timeout_s) or the recv/barrier timeouts can turn
  /// such a death into a diagnosed fault; par::run asserts one of them is
  /// armed so a silent kill cannot become a silent hang.
  bool kill_silent = false;
  /// Ranks exempted from rank-kill selection. resil::supervise appends the
  /// victim of a shrink/spare repair here: the failed node has been replaced
  /// or excluded, so its deterministic kill must not fire again (the
  /// rank-kill analogue of clear_kill_on_retry, but per-victim instead of
  /// global — later victims still die, enabling back-to-back failure tests).
  std::vector<int> kill_exempt;
  /// Every stride-th in-flight message (selected by seeded hash of
  /// (seed, src, dst, seq), the delay stream's coordinates) has its payload
  /// corrupted — bit-flip, tail truncation, or byte duplication, the kind
  /// drawn from the same hash; 0 = none. Reference-backend shared-slot
  /// writes count as messages on the (writer, P) stream.
  int corrupt_msg_stride = 0;
  /// Every stride-th checkpoint commit (selected by seeded hash of
  /// (seed, step, attempt)) suffers a disk fault — torn tail, truncation, or
  /// transient EIO — before the file is published; 0 = none. Faults are
  /// transient per write attempt, so a write-verify retry loop heals them.
  int disk_fault_stride = 0;

  bool delays_enabled() const { return seed != 0 && max_delay_us > 0.0; }
  bool slowdown_enabled() const {
    return seed != 0 && slow_rank_stride > 0 && slow_op_us > 0.0;
  }
  bool kill_enabled() const {
    return seed != 0 && kill_rank_stride > 0 && kill_after_ops > 0;
  }
  bool corrupt_enabled() const { return seed != 0 && corrupt_msg_stride > 0; }
  bool disk_enabled() const { return seed != 0 && disk_fault_stride > 0; }
};

namespace detail {

/// splitmix64 finalizer: a fast, well-mixed 64-bit hash.
std::uint64_t mix64(std::uint64_t x);

/// Uniform [0, 1) from a seed and two stream coordinates.
double unit_hash(std::uint64_t seed, std::uint64_t a, std::uint64_t b);

/// True if `rank` is one of the seeded slow ranks.
bool is_slow_rank(const InjectConfig& cfg, int rank);

/// True if `rank` is one of the seeded kill victims.
bool is_kill_rank(const InjectConfig& cfg, int rank);

/// Delivery delay in microseconds for the seq-th message from src to dst.
double delay_us(const InjectConfig& cfg, int src, int dst, std::uint64_t seq);

/// Extra per-operation sleep in microseconds for a slow rank's op_seq-th op.
double slow_op_sleep_us(const InjectConfig& cfg, int rank, std::uint64_t op_seq);

/// How a selected message payload is corrupted in flight.
enum class PayloadFault { none, bitflip, truncate, duplicate };

const char* payload_fault_name(PayloadFault f);

/// The payload fault (or none) for the seq-th message from src to dst. Pure
/// function of (cfg.seed, src, dst, seq): identical victims for identical
/// seeds, independent of scheduling — the same contract as delay_us.
PayloadFault payload_fault(const InjectConfig& cfg, int src, int dst, std::uint64_t seq);

/// Apply the selected fault (if any) to `data` in place. Bit-flip inverts one
/// hashed bit; truncate drops 1..n hashed tail bytes; duplicate re-appends a
/// hashed-length prefix slice. An empty payload grows by one hashed byte.
/// Returns the fault applied (none when the message is not selected).
PayloadFault corrupt_payload(const InjectConfig& cfg, int src, int dst, std::uint64_t seq,
                             std::vector<std::byte>& data);

/// How a selected checkpoint commit fails.
enum class DiskFault { none, torn_tail, truncate, eio };

const char* disk_fault_name(DiskFault f);

/// The disk fault (or none) for write attempt `attempt` of checkpoint step
/// `step`. Pure function of (cfg.seed, step, attempt); the attempt coordinate
/// makes every fault transient, so bounded write-verify retries converge.
DiskFault disk_fault(const InjectConfig& cfg, std::uint64_t step, std::uint64_t attempt);

}  // namespace detail

}  // namespace esamr::par
