// Deterministic fault/perturbation injection for the SPMD runtime.
//
// All perturbation is derived by hashing (seed, stream coordinates): the same
// seed always produces the same delivery delays and the same set of slowed
// ranks, independent of thread scheduling. Injection perturbs *timing* only —
// per-(source, destination) message order is preserved (delivery times are
// clamped monotone per pair), so tag-matching semantics are unchanged and a
// correct deterministic algorithm must produce bit-identical results under
// every seed. That invariant is what tests/test_perturb.cc asserts.
#pragma once

#include <cstdint>

namespace esamr::par {

struct InjectConfig {
  /// Master seed; 0 disables all perturbation.
  std::uint64_t seed = 0;
  /// Per-message delivery delay, uniform in [0, max_delay_us) microseconds.
  double max_delay_us = 0.0;
  /// Every stride-th rank (selected by seeded hash) runs slowed; 0 = none.
  int slow_rank_stride = 0;
  /// Mean extra latency per comm operation on a slowed rank, microseconds.
  double slow_op_us = 0.0;
  /// Every stride-th rank (selected by seeded hash, independent of the slow
  /// set) is a kill victim; 0 = none. Victims throw RankFailure from their
  /// kill_after_ops-th comm operation, modelling a one-shot node failure.
  int kill_rank_stride = 0;
  /// Comm operation count (sends, recvs, collectives) after which a victim
  /// rank fails; 0 disables rank-kill even when a stride is set.
  std::uint64_t kill_after_ops = 0;

  bool delays_enabled() const { return seed != 0 && max_delay_us > 0.0; }
  bool slowdown_enabled() const {
    return seed != 0 && slow_rank_stride > 0 && slow_op_us > 0.0;
  }
  bool kill_enabled() const {
    return seed != 0 && kill_rank_stride > 0 && kill_after_ops > 0;
  }
};

namespace detail {

/// splitmix64 finalizer: a fast, well-mixed 64-bit hash.
std::uint64_t mix64(std::uint64_t x);

/// Uniform [0, 1) from a seed and two stream coordinates.
double unit_hash(std::uint64_t seed, std::uint64_t a, std::uint64_t b);

/// True if `rank` is one of the seeded slow ranks.
bool is_slow_rank(const InjectConfig& cfg, int rank);

/// True if `rank` is one of the seeded kill victims.
bool is_kill_rank(const InjectConfig& cfg, int rank);

/// Delivery delay in microseconds for the seq-th message from src to dst.
double delay_us(const InjectConfig& cfg, int src, int dst, std::uint64_t seq);

/// Extra per-operation sleep in microseconds for a slow rank's op_seq-th op.
double slow_op_sleep_us(const InjectConfig& cfg, int rank, std::uint64_t op_seq);

}  // namespace detail

}  // namespace esamr::par
