// Shared seeded-backoff helper — the single sanctioned home of thread sleeps
// in this codebase (scripts/lint.sh grep-gates raw std::this_thread::sleep_for
// everywhere else), so every retry/backoff path draws its delays from the
// same deterministic primitive and replays bit-identically per seed.
//
// SeededBackoff produces the exponential-with-jitter schedule used by
// resil::supervise (restart backoff) and the link-level ARQ retransmission
// loop (par/comm.cc): sleep k is
//
//   nominal_k * (1 + jitter * u_k),   u_k = 2 * unit_hash(key, k, 0) - 1
//
// with nominal_0 = initial_s and nominal_{k+1} = min(nominal_k * factor,
// cap_s). The jitter stream is a pure function of `key` (callers fold their
// inject seed with a per-layer salt and any per-link coordinates), so
// concurrent retry loops decorrelate while each stays reproducible.
#pragma once

#include <cstdint>

namespace esamr::par {

/// Backoff schedule parameters shared by the supervisor and ARQ layers.
struct BackoffPolicy {
  double initial_s = 0.01;  ///< nominal first sleep; 0 disables sleeping
  double factor = 2.0;      ///< nominal growth per attempt
  double cap_s = 1.0;       ///< nominal ceiling
  double jitter = 0.5;      ///< fractional seeded jitter; 0 = exact schedule
};

/// Deterministic jittered-exponential backoff stream (see file header).
class SeededBackoff {
 public:
  SeededBackoff(const BackoffPolicy& policy, std::uint64_t key)
      : policy_(policy), key_(key), nominal_(policy.initial_s) {}

  /// True when the policy sleeps at all (initial_s > 0).
  bool enabled() const { return policy_.initial_s > 0.0; }

  /// The next jittered sleep duration in seconds; advances the schedule.
  /// Returns 0 when the policy is disabled.
  double next_sleep_s();

  /// Draw the next duration and actually sleep it; returns the duration.
  double sleep();

 private:
  BackoffPolicy policy_;
  std::uint64_t key_;
  double nominal_;
  std::uint64_t attempt_ = 0;
};

namespace detail {

/// The raw sleep primitives every timed wait that is not a condition-variable
/// wait must route through (lint-gated; see file header).
void sleep_s(double seconds);
void sleep_us(double micros);

}  // namespace detail

}  // namespace esamr::par
