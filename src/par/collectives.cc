// Collective implementations for both Comm backends.
//
// p2p backend — real message-passing algorithms on send/recv:
//   bcast      binomial tree rooted at `root`
//   reduce     binomial tree (reverse of bcast)
//   allreduce  recursive doubling with the standard non-power-of-two
//              pre/post folding of the remainder ranks
//   allgather  recursive doubling (power-of-two P), ring otherwise
//   allgatherv ring (P-1 rounds, neighbor exchange)
//   exscan     rank chain (rank r receives the prefix from r-1)
//   alltoallv  pairwise: P-1 buffered sends, then P-1 receives
//
// reference backend — the original shared-slot pattern ("write own slot;
// barrier; read peers' slots; barrier"), kept as the differential-testing
// oracle. Its bcast is root-only (the root writes one shared buffer and
// everyone else reads it) rather than the historical full allgather.
//
// Internal collective traffic uses a mailbox plane separate from user
// point-to-point traffic, so a wildcard user recv can never steal a
// collective message. Tags encode (collective sequence number, round) —
// all ranks issue collectives in the same order, so the sequence numbers
// agree across ranks by construction.
#include <cstring>
#include <stdexcept>

#include "par/comm.h"
#include "par/request.h"
#include "par/world.h"

namespace esamr::par {

namespace {

constexpr int max_round = 2048;  ///< rounds per collective in the tag space
constexpr int round_pre = 1024;  ///< allreduce non-pof2 pre-fold round id
constexpr int round_post = 1025;

bool is_pof2(int n) { return n > 0 && (n & (n - 1)) == 0; }

int log2i(int pof2) {
  int l = 0;
  while ((1 << l) < pof2) ++l;
  return l;
}

int pof2_below(int n) {
  int p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

/// Barrier with blocked time charged to the rank (used inside reference
/// collectives, where the barrier is part of the algorithm, not a user call).
void timed_barrier(World* w, int rank, check::Site site = {}) {
  const double t0 = wall_seconds();
  w->barrier_wait(rank, site);
  w->stats[static_cast<std::size_t>(rank)].barrier_blocked_s += wall_seconds() - t0;
}

}  // namespace

void Comm::coll_begin(Coll kind, std::size_t payload_bytes, std::uint64_t invariant, int root,
                      check::Site site) {
  maybe_kill();
  auto& st = stats();
  const auto idx = static_cast<std::size_t>(kind);
  ++st.coll_calls[idx];
  st.coll_payload_bytes[idx] += static_cast<std::int64_t>(payload_bytes);
  coll_tag_base_ = static_cast<int>((coll_seq_ % 1000000ULL) * static_cast<std::uint64_t>(max_round));
  if (checker_ != nullptr) {
    coll_site_ = site;
    check::Fingerprint fp;
    fp.kind = static_cast<std::uint8_t>(kind);
    fp.root = static_cast<std::int16_t>(root);
    fp.invariant = invariant;
    fp.site = site;
    checker_->collective(rank_, coll_seq_, fp, /*result_pass=*/false, world_);
  }
  ++coll_seq_;
}

void Comm::coll_check_result(const void* data, std::size_t nbytes) {
  coll_check_result_at(coll_seq_ - 1, coll_site_, data, nbytes);
}

void Comm::coll_check_result(const std::vector<std::vector<std::byte>>& parts) {
  coll_check_result_at(coll_seq_ - 1, coll_site_, parts);
}

void Comm::coll_check_result_at(std::uint64_t seq, check::Site site, const void* data,
                                std::size_t nbytes) {
  if (checker_ == nullptr || checker_->level() < 2) return;
  check::Fingerprint fp;
  fp.kind = 0xff;
  fp.invariant = check::Checker::crc32c(data, nbytes);
  fp.site = site;
  checker_->collective(rank_, seq, fp, /*result_pass=*/true, world_);
}

void Comm::coll_check_result_at(std::uint64_t seq, check::Site site,
                                const std::vector<std::vector<std::byte>>& parts) {
  if (checker_ == nullptr || checker_->level() < 2) return;
  // Digest of (size, CRC) per part; rank-invariant iff every part agrees.
  std::vector<std::uint64_t> digest;
  digest.reserve(parts.size() * 2);
  for (const auto& p : parts) {
    digest.push_back(p.size());
    digest.push_back(check::Checker::crc32c(p.data(), p.size()));
  }
  coll_check_result_at(seq, site, digest.data(), digest.size() * sizeof(std::uint64_t));
}

int Comm::coll_tag(int round) const {
  ESAMR_ASSERT(round >= 0 && round < max_round, rank_,
               "par: collective round " + std::to_string(round) + " overflows the tag space");
  return coll_tag_base_ + round;
}

void Comm::send_coll(int dest, int round, const void* data, std::size_t nbytes) {
  send_coll_at(coll_tag_base_, dest, round, data, nbytes);
}

Message Comm::recv_coll(int source, int round, Coll kind) {
  return recv_coll_at(coll_tag_base_, source, round, kind, coll_site_);
}

void Comm::send_coll_at(int tag_base, int dest, int round, const void* data, std::size_t nbytes) {
  ESAMR_ASSERT(round >= 0 && round < max_round, rank_,
               "par: collective round " + std::to_string(round) + " overflows the tag space");
  send_impl(true, dest, tag_base + round, Buffer::copy_of(data, nbytes));
  auto& st = stats();
  ++st.coll_msgs;
  st.coll_bytes += static_cast<std::int64_t>(nbytes);
}

Message Comm::recv_coll_at(int tag_base, int source, int round, Coll kind, check::Site site) {
  ESAMR_ASSERT(round >= 0 && round < max_round, rank_,
               "par: collective round " + std::to_string(round) + " overflows the tag space");
  const double t0 = wall_seconds();
  Message m = recv_impl(true, source, tag_base + round, coll_name(kind), site);
  verify_envelope(m, coll_name(kind));
  stats().recv_blocked_s += wall_seconds() - t0;
  return m;
}

bool Comm::try_recv_coll_at(int tag_base, int source, int round, Coll kind, Message* out) {
  ESAMR_ASSERT(round >= 0 && round < max_round, rank_,
               "par: collective round " + std::to_string(round) + " overflows the tag space");
  if (!try_recv_impl(true, source, tag_base + round, out)) return false;
  verify_envelope(*out, coll_name(kind));
  return true;
}

// --- Reference backend (shared slots) --------------------------------------

std::vector<std::vector<std::byte>> Comm::ref_gather(const void* data, std::size_t nbytes,
                                                     bool count) {
  const int p = size();
  auto& slot = world_->slots[static_cast<std::size_t>(rank_)];
  slot.resize(nbytes);
  if (nbytes > 0) std::memcpy(slot.data(), data, nbytes);
  // Seal (and under injection possibly corrupt) before the region guard: a
  // truncating/duplicating fault reallocates the vector, and the guard must
  // cover the bytes peers will actually read.
  seal_shared(slot, world_->slot_seals[static_cast<std::size_t>(rank_)]);
  // Dogfood detector 1 on the runtime's own shared-slot pattern: the slot is
  // this rank's region until the collective completes; peers read it only
  // after the barrier supplies the happens-before edge.
  check::RegionGuard slot_guard(*this, slot.data(), slot.size(), "par::ref_gather slot");
  timed_barrier(world_, rank_, coll_site_);
  if (checker_ != nullptr) {
    for (int r = 0; r < p; ++r) {
      if (r == rank_) continue;
      const auto& peer = world_->slots[static_cast<std::size_t>(r)];
      check::note_access(*this, peer.data(), peer.size(), /*write=*/false);
    }
  }
  for (int r = 0; r < p; ++r) {
    verify_shared(world_->slots[static_cast<std::size_t>(r)],
                  world_->slot_seals[static_cast<std::size_t>(r)], r, "ref_gather");
  }
  std::vector<std::vector<std::byte>> out(world_->slots.begin(), world_->slots.end());
  if (count) {
    auto& st = stats();
    st.coll_msgs += p;  // one slot write + P-1 peer reads
    st.coll_bytes += static_cast<std::int64_t>(nbytes);
    for (int r = 0; r < p; ++r) {
      if (r != rank_) st.coll_bytes += static_cast<std::int64_t>(out[static_cast<std::size_t>(r)].size());
    }
  }
  timed_barrier(world_, rank_, coll_site_);
  return out;
}

void Comm::ref_bcast(std::vector<std::byte>& buf, int root) {
  auto& st = stats();
  if (rank_ == root) {
    world_->bvec = buf;
    seal_shared(world_->bvec, world_->bvec_seal);
    ++st.coll_msgs;
    st.coll_bytes += static_cast<std::int64_t>(buf.size());
  }
  timed_barrier(world_, rank_, coll_site_);
  if (rank_ != root) {
    buf = world_->bvec;
    verify_shared(buf, world_->bvec_seal, root, "ref_bcast");
    ++st.coll_msgs;
    st.coll_bytes += static_cast<std::int64_t>(buf.size());
  }
  timed_barrier(world_, rank_, coll_site_);
}

void Comm::ref_allreduce(void* inout, std::size_t nbytes, const Combine& op) {
  const auto all = ref_gather(inout, nbytes, true);
  std::vector<std::byte> acc(all[0]);
  for (std::size_t r = 1; r < all.size(); ++r) op(acc.data(), all[r].data());
  if (nbytes > 0) std::memcpy(inout, acc.data(), nbytes);
}

void Comm::ref_reduce(void* inout, std::size_t nbytes, int root, const Combine& op) {
  const int p = size();
  auto& slot = world_->slots[static_cast<std::size_t>(rank_)];
  slot.resize(nbytes);
  if (nbytes > 0) std::memcpy(slot.data(), inout, nbytes);
  seal_shared(slot, world_->slot_seals[static_cast<std::size_t>(rank_)]);
  auto& st = stats();
  ++st.coll_msgs;
  st.coll_bytes += static_cast<std::int64_t>(nbytes);
  timed_barrier(world_, rank_, coll_site_);
  if (rank_ == root) {
    for (int r = 0; r < p; ++r) {
      verify_shared(world_->slots[static_cast<std::size_t>(r)],
                    world_->slot_seals[static_cast<std::size_t>(r)], r, "ref_reduce");
    }
    std::vector<std::byte> acc(world_->slots[0]);
    for (int r = 1; r < p; ++r) op(acc.data(), world_->slots[static_cast<std::size_t>(r)].data());
    st.coll_msgs += p - 1;
    st.coll_bytes += static_cast<std::int64_t>(nbytes) * (p - 1);
    if (nbytes > 0) std::memcpy(inout, acc.data(), nbytes);
  }
  timed_barrier(world_, rank_, coll_site_);
}

void Comm::ref_exscan(const void* mine, void* prefix, std::size_t nbytes, const Combine& op) {
  auto& slot = world_->slots[static_cast<std::size_t>(rank_)];
  slot.resize(nbytes);
  if (nbytes > 0) std::memcpy(slot.data(), mine, nbytes);
  seal_shared(slot, world_->slot_seals[static_cast<std::size_t>(rank_)]);
  auto& st = stats();
  ++st.coll_msgs;
  st.coll_bytes += static_cast<std::int64_t>(nbytes);
  timed_barrier(world_, rank_, coll_site_);
  for (int r = 0; r < rank_; ++r) {
    verify_shared(world_->slots[static_cast<std::size_t>(r)],
                  world_->slot_seals[static_cast<std::size_t>(r)], r, "ref_exscan");
    op(prefix, world_->slots[static_cast<std::size_t>(r)].data());
    ++st.coll_msgs;
    st.coll_bytes += static_cast<std::int64_t>(nbytes);
  }
  timed_barrier(world_, rank_, coll_site_);
}

std::vector<std::vector<std::byte>> Comm::ref_alltoall(
    std::vector<std::vector<std::byte>> sendbufs) {
  const int p = size();
  auto& st = stats();
  for (int d = 0; d < p; ++d) {
    if (d != rank_) {
      ++st.coll_msgs;
      st.coll_bytes += static_cast<std::int64_t>(sendbufs[static_cast<std::size_t>(d)].size());
    }
  }
  auto& seals = world_->a2a_seals[static_cast<std::size_t>(rank_)];
  for (int d = 0; d < p; ++d) {
    seal_shared(sendbufs[static_cast<std::size_t>(d)], seals[static_cast<std::size_t>(d)]);
  }
  world_->a2a[static_cast<std::size_t>(rank_)] = std::move(sendbufs);
  timed_barrier(world_, rank_, coll_site_);
  std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(p));
  for (int s = 0; s < p; ++s) {
    // a2a[s][rank_] is read by exactly one rank (this one), so moving is safe.
    out[static_cast<std::size_t>(s)] =
        std::move(world_->a2a[static_cast<std::size_t>(s)][static_cast<std::size_t>(rank_)]);
    verify_shared(out[static_cast<std::size_t>(s)],
                  world_->a2a_seals[static_cast<std::size_t>(s)][static_cast<std::size_t>(rank_)],
                  s, "ref_alltoall");
    if (s != rank_) {
      ++st.coll_msgs;
      st.coll_bytes += static_cast<std::int64_t>(out[static_cast<std::size_t>(s)].size());
    }
  }
  timed_barrier(world_, rank_, coll_site_);
  return out;
}

// --- p2p backend ------------------------------------------------------------

void Comm::p2p_binomial_bcast(std::vector<std::byte>& buf, int root) {
  const int p = size();
  if (p == 1) return;
  const int vr = (rank_ - root + p) % p;
  int mask = 1;
  while (mask < p && !(vr & mask)) mask <<= 1;
  if (vr != 0) {
    // mask is now the lowest set bit of vr: the edge we receive on.
    const int vsrc = vr - mask;
    Message m = recv_coll((vsrc + root) % p, log2i(mask), Coll::bcast);
    buf = m.take_bytes();
  }
  mask >>= 1;
  while (mask > 0) {
    const int vdst = vr + mask;
    if (vdst < p) send_coll((vdst + root) % p, log2i(mask), buf.data(), buf.size());
    mask >>= 1;
  }
}

void Comm::p2p_binomial_reduce(void* inout, std::size_t nbytes, int root, const Combine& op) {
  const int p = size();
  if (p == 1) return;
  std::vector<std::byte> acc(nbytes);
  if (nbytes > 0) std::memcpy(acc.data(), inout, nbytes);
  const int vr = (rank_ - root + p) % p;
  int mask = 1, round = 0;
  while (mask < p) {
    if (vr & mask) {
      send_coll((vr - mask + root) % p, round, acc.data(), nbytes);
      break;
    }
    const int vsrc = vr | mask;
    if (vsrc < p) {
      Message m = recv_coll((vsrc + root) % p, round, Coll::reduce);
      op(acc.data(), m.data());
    }
    mask <<= 1;
    ++round;
  }
  if (rank_ == root && nbytes > 0) std::memcpy(inout, acc.data(), nbytes);
}

void Comm::p2p_rd_allreduce(void* inout, std::size_t nbytes, const Combine& op) {
  const int p = size();
  if (p == 1) return;
  const int pof2 = pof2_below(p), rem = p - pof2;
  // Fold the remainder ranks into their even/odd partner so a power of two
  // participates in the doubling rounds.
  int newrank;
  if (rank_ < 2 * rem) {
    if (rank_ % 2 == 0) {
      send_coll(rank_ + 1, round_pre, inout, nbytes);
      newrank = -1;
    } else {
      Message m = recv_coll(rank_ - 1, round_pre, Coll::allreduce);
      op(inout, m.data());
      newrank = rank_ / 2;
    }
  } else {
    newrank = rank_ - rem;
  }
  if (newrank != -1) {
    int round = 0;
    for (int mask = 1; mask < pof2; mask <<= 1, ++round) {
      const int npartner = newrank ^ mask;
      const int partner = npartner < rem ? npartner * 2 + 1 : npartner + rem;
      send_coll(partner, round, inout, nbytes);
      Message m = recv_coll(partner, round, Coll::allreduce);
      op(inout, m.data());
    }
  }
  if (rank_ < 2 * rem) {
    if (rank_ % 2 == 1) {
      send_coll(rank_ - 1, round_post, inout, nbytes);
    } else {
      Message m = recv_coll(rank_ + 1, round_post, Coll::allreduce);
      if (nbytes > 0) std::memcpy(inout, m.data(), nbytes);
    }
  }
}

std::vector<std::vector<std::byte>> Comm::p2p_rd_allgather(const void* data, std::size_t nbytes) {
  const int p = size();
  std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(p));
  out[static_cast<std::size_t>(rank_)].resize(nbytes);
  if (nbytes > 0) std::memcpy(out[static_cast<std::size_t>(rank_)].data(), data, nbytes);
  // Each round exchanges every block held so far with the partner across the
  // current hypercube dimension; blocks travel as (int32 origin, payload).
  const std::size_t rec = sizeof(std::int32_t) + nbytes;
  std::vector<int> held{rank_};
  int round = 0;
  for (int mask = 1; mask < p; mask <<= 1, ++round) {
    const int partner = rank_ ^ mask;
    std::vector<std::byte> buf(held.size() * rec);
    for (std::size_t i = 0; i < held.size(); ++i) {
      const std::int32_t origin = held[i];
      std::memcpy(buf.data() + i * rec, &origin, sizeof(origin));
      if (nbytes > 0) {
        std::memcpy(buf.data() + i * rec + sizeof(origin),
                    out[static_cast<std::size_t>(origin)].data(), nbytes);
      }
    }
    send_coll(partner, round, buf.data(), buf.size());
    Message m = recv_coll(partner, round, Coll::allgather);
    const std::size_t got = m.size() / rec;
    for (std::size_t i = 0; i < got; ++i) {
      std::int32_t origin;
      std::memcpy(&origin, m.data() + i * rec, sizeof(origin));
      auto& blk = out[static_cast<std::size_t>(origin)];
      blk.resize(nbytes);
      if (nbytes > 0) std::memcpy(blk.data(), m.data() + i * rec + sizeof(origin), nbytes);
      held.push_back(origin);
    }
  }
  return out;
}

std::vector<std::vector<std::byte>> Comm::p2p_ring_allgatherv(const void* data, std::size_t nbytes,
                                                              Coll kind) {
  const int p = size();
  std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(p));
  out[static_cast<std::size_t>(rank_)].resize(nbytes);
  if (nbytes > 0) std::memcpy(out[static_cast<std::size_t>(rank_)].data(), data, nbytes);
  if (p == 1) return out;
  const int next = (rank_ + 1) % p, prev = (rank_ + p - 1) % p;
  for (int round = 0; round < p - 1; ++round) {
    // Forward the block that originated `round` hops behind us; receive the
    // block originating `round + 1` hops behind.
    const int fwd = (rank_ + p - round) % p;
    send_coll(next, round, out[static_cast<std::size_t>(fwd)].data(),
              out[static_cast<std::size_t>(fwd)].size());
    const int got = (rank_ + p - 1 - round) % p;
    Message m = recv_coll(prev, round, kind);
    out[static_cast<std::size_t>(got)] = m.take_bytes();
  }
  return out;
}

void Comm::p2p_chain_exscan(const void* mine, void* prefix, std::size_t nbytes, const Combine& op) {
  const int p = size();
  if (rank_ > 0) {
    Message m = recv_coll(rank_ - 1, 0, Coll::exscan);
    if (nbytes > 0) std::memcpy(prefix, m.data(), nbytes);
  }
  if (rank_ < p - 1) {
    std::vector<std::byte> next(nbytes);
    if (nbytes > 0) std::memcpy(next.data(), prefix, nbytes);
    op(next.data(), mine);
    send_coll(rank_ + 1, 0, next.data(), next.size());
  }
}

std::vector<std::vector<std::byte>> Comm::p2p_alltoall(
    std::vector<std::vector<std::byte>> sendbufs) {
  const int p = size();
  std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(p));
  out[static_cast<std::size_t>(rank_)] = std::move(sendbufs[static_cast<std::size_t>(rank_)]);
  // Buffered sends never block, so everyone sends first (staggered start so
  // rank pairs do not all target the same destination at once), then drains.
  for (int off = 1; off < p; ++off) {
    const int dst = (rank_ + off) % p;
    send_coll(dst, 0, sendbufs[static_cast<std::size_t>(dst)].data(),
              sendbufs[static_cast<std::size_t>(dst)].size());
  }
  for (int off = 1; off < p; ++off) {
    const int src = (rank_ + p - off) % p;
    Message m = recv_coll(src, 0, Coll::alltoall);
    out[static_cast<std::size_t>(src)] = m.take_bytes();
  }
  return out;
}

// --- Nonblocking collectives ------------------------------------------------

void detail::CollOp::send_at(Comm& c, int tag_base, int dest, int round, const void* data,
                             std::size_t nbytes) {
  c.send_coll_at(tag_base, dest, round, data, nbytes);
}

Message detail::CollOp::recv_at(Comm& c, int tag_base, int source, int round, Coll kind,
                                check::Site site) {
  return c.recv_coll_at(tag_base, source, round, kind, site);
}

bool detail::CollOp::try_recv_at(Comm& c, int tag_base, int source, int round, Coll kind,
                                 Message* out) {
  return c.try_recv_coll_at(tag_base, source, round, kind, out);
}

void detail::CollOp::check_result_at(Comm& c, std::uint64_t seq, check::Site site,
                                     const void* data, std::size_t nbytes) {
  c.coll_check_result_at(seq, site, data, nbytes);
}

void detail::CollOp::check_result_at(Comm& c, std::uint64_t seq, check::Site site,
                                     const std::vector<std::vector<std::byte>>& parts) {
  c.coll_check_result_at(seq, site, parts);
}

namespace {

/// iallreduce state machine: p2p_rd_allreduce replayed split-phase against
/// st.result. Sends for a round are issued the moment the round is entered
/// (exactly where the blocking twin issues them), receives advance in
/// step(); the fold partners and order are identical, so the result is
/// bit-identical to the blocking algorithm and the wire traffic matches
/// message for message.
class IallreduceOp final : public esamr::par::detail::CollOp {
 public:
  IallreduceOp(int tag_base, std::uint64_t seq, check::Site site, std::size_t nbytes,
               Comm::Combine op, int p, int rank)
      : tag_base_(tag_base), seq_(seq), site_(site), nbytes_(nbytes), op_(std::move(op)),
        rank_(rank), pof2_(pof2_below(p)), rem_(p - pof2_) {}

  /// Issue the post-time sends and pick the initial stage (called once from
  /// iallreduce_bytes, right after the collective slot claim).
  void post(Comm& c, detail::RequestState& st) {
    if (rank_ < 2 * rem_) {
      if (rank_ % 2 == 0) {
        // Even remainder ranks fold into their odd partner and sit out the
        // doubling rounds; they only await the folded-back result.
        send_at(c, tag_base_, rank_ + 1, round_pre, st.result.data(), nbytes_);
        stage_ = Stage::await_post;
      } else {
        stage_ = Stage::await_pre;
      }
    } else {
      newrank_ = rank_ - rem_;
      begin_rounds(c, st);
    }
  }

  bool step(Comm& c, detail::RequestState& st, bool may_block) override {
    for (;;) {
      switch (stage_) {
        case Stage::await_pre: {
          Message m;
          if (!take(c, round_pre, rank_ - 1, may_block, &m)) return false;
          op_(st.result.data(), m.data());
          newrank_ = rank_ / 2;
          begin_rounds(c, st);
          break;
        }
        case Stage::rounds: {
          Message m;
          if (!take(c, round_, partner(), may_block, &m)) return false;
          op_(st.result.data(), m.data());
          mask_ <<= 1;
          ++round_;
          if (mask_ < pof2_) {
            send_at(c, tag_base_, partner(), round_, st.result.data(), nbytes_);
          } else if (rank_ < 2 * rem_) {
            // Only odd remainder ranks reach the rounds; fold back down.
            send_at(c, tag_base_, rank_ - 1, round_post, st.result.data(), nbytes_);
            stage_ = Stage::finish;
          } else {
            stage_ = Stage::finish;
          }
          break;
        }
        case Stage::await_post: {
          Message m;
          if (!take(c, round_post, rank_ + 1, may_block, &m)) return false;
          if (nbytes_ > 0) std::memcpy(st.result.data(), m.data(), nbytes_);
          stage_ = Stage::finish;
          break;
        }
        case Stage::finish:
          check_result_at(c, seq_, site_, st.result.data(), st.result.size());
          return true;
      }
    }
  }

 private:
  enum class Stage { await_pre, rounds, await_post, finish };

  int partner() const {
    const int npartner = newrank_ ^ mask_;
    return npartner < rem_ ? npartner * 2 + 1 : npartner + rem_;
  }
  void begin_rounds(Comm& c, detail::RequestState& st) {
    mask_ = 1;
    round_ = 0;
    send_at(c, tag_base_, partner(), round_, st.result.data(), nbytes_);
    stage_ = Stage::rounds;
  }
  bool take(Comm& c, int round, int source, bool may_block, Message* m) {
    if (may_block) {
      *m = recv_at(c, tag_base_, source, round, Coll::allreduce, site_);
      return true;
    }
    return try_recv_at(c, tag_base_, source, round, Coll::allreduce, m);
  }

  const int tag_base_;
  const std::uint64_t seq_;
  const check::Site site_;
  const std::size_t nbytes_;
  const Comm::Combine op_;
  const int rank_, pof2_, rem_;
  int newrank_ = -1;
  int mask_ = 1;
  int round_ = 0;
  Stage stage_ = Stage::finish;
};

/// iallgatherv state machine: the ring replayed split-phase against
/// st.parts. Round r's forward is posted as soon as round r-1's block
/// arrives (the blocking twin's order), so traffic and results match the
/// blocking algorithm exactly.
class IallgathervOp final : public esamr::par::detail::CollOp {
 public:
  IallgathervOp(int tag_base, std::uint64_t seq, check::Site site, int p, int rank)
      : tag_base_(tag_base), seq_(seq), site_(site), p_(p), rank_(rank),
        next_((rank + 1) % p), prev_((rank + p - 1) % p) {}

  void post(Comm& c, detail::RequestState& st) {
    const auto& own = st.parts[static_cast<std::size_t>(rank_)];
    send_at(c, tag_base_, next_, 0, own.data(), own.size());
  }

  bool step(Comm& c, detail::RequestState& st, bool may_block) override {
    while (round_ < p_ - 1) {
      Message m;
      if (may_block) {
        m = recv_at(c, tag_base_, prev_, round_, Coll::allgatherv, site_);
      } else if (!try_recv_at(c, tag_base_, prev_, round_, Coll::allgatherv, &m)) {
        return false;
      }
      const int got = (rank_ + p_ - 1 - round_) % p_;
      st.parts[static_cast<std::size_t>(got)] = m.take_bytes();
      ++round_;
      if (round_ < p_ - 1) {
        // Forward the block that just arrived (origin `round_` hops behind).
        const int fwd = (rank_ + p_ - round_) % p_;
        const auto& blk = st.parts[static_cast<std::size_t>(fwd)];
        send_at(c, tag_base_, next_, round_, blk.data(), blk.size());
      }
    }
    check_result_at(c, seq_, site_, st.parts);
    return true;
  }

 private:
  const int tag_base_;
  const std::uint64_t seq_;
  const check::Site site_;
  const int p_, rank_, next_, prev_;
  int round_ = 0;
};

}  // namespace

Request Comm::iallreduce_bytes(const void* data, std::size_t nbytes, const Combine& op,
                               std::source_location loc) {
  perturb();
  const check::Site site = check::Site::of(loc);
  coll_begin(Coll::allreduce, nbytes, nbytes, -1, site);
  const std::uint64_t seq = coll_seq_ - 1;
  const int tag_base = coll_tag_base_;
  auto st = std::make_shared<detail::RequestState>();
  st->kind = detail::RequestState::Kind::coll;
  st->comm = this;
  st->site = site;
  st->result.resize(nbytes);
  if (nbytes > 0) std::memcpy(st->result.data(), data, nbytes);
  if (backend() == Backend::reference) {
    // The shared-slot oracle has no split-phase form: degrade to the
    // blocking algorithm and complete at post.
    ref_allreduce(st->result.data(), nbytes, op);
    coll_check_result_at(seq, site, st->result.data(), nbytes);
    st->done = true;
  } else if (size() == 1) {
    coll_check_result_at(seq, site, st->result.data(), nbytes);
    st->done = true;
  } else {
    auto coll = std::make_unique<IallreduceOp>(tag_base, seq, site, nbytes, op, size(), rank_);
    coll->post(*this, *st);
    st->coll = std::move(coll);
  }
  return Request(std::move(st));
}

Request Comm::iallgatherv_bytes(const void* data, std::size_t nbytes, std::source_location loc) {
  perturb();
  const check::Site site = check::Site::of(loc);
  coll_begin(Coll::allgatherv, nbytes, 0, -1, site);
  const std::uint64_t seq = coll_seq_ - 1;
  const int tag_base = coll_tag_base_;
  auto st = std::make_shared<detail::RequestState>();
  st->kind = detail::RequestState::Kind::coll;
  st->comm = this;
  st->site = site;
  if (backend() == Backend::reference) {
    st->parts = ref_gather(data, nbytes, true);
    coll_check_result_at(seq, site, st->parts);
    st->done = true;
  } else {
    st->parts.resize(static_cast<std::size_t>(size()));
    auto& own = st->parts[static_cast<std::size_t>(rank_)];
    own.resize(nbytes);
    if (nbytes > 0) std::memcpy(own.data(), data, nbytes);
    if (size() == 1) {
      coll_check_result_at(seq, site, st->parts);
      st->done = true;
    } else {
      auto coll = std::make_unique<IallgathervOp>(tag_base, seq, site, size(), rank_);
      coll->post(*this, *st);
      st->coll = std::move(coll);
    }
  }
  return Request(std::move(st));
}

// --- Dispatchers ------------------------------------------------------------

void Comm::bcast_bytes(std::vector<std::byte>& buf, int root, std::source_location loc) {
  ESAMR_ASSERT(root >= 0 && root < size(), rank_,
               "par::bcast: root rank " + std::to_string(root) + " out of range [0, " +
                   std::to_string(size()) + ")");
  perturb();
  // The payload size is only meaningful on the root (non-roots are resized),
  // so it is not part of the cross-rank fingerprint.
  coll_begin(Coll::bcast, rank_ == root ? buf.size() : 0, 0, root, check::Site::of(loc));
  if (backend() == Backend::reference) {
    ref_bcast(buf, root);
  } else {
    p2p_binomial_bcast(buf, root);
  }
  coll_check_result(buf.data(), buf.size());
}

std::vector<std::vector<std::byte>> Comm::allgather_bytes(const void* data, std::size_t nbytes,
                                                          std::source_location loc) {
  perturb();
  coll_begin(Coll::allgather, nbytes, nbytes, -1, check::Site::of(loc));
  std::vector<std::vector<std::byte>> out;
  if (backend() == Backend::reference) {
    out = ref_gather(data, nbytes, true);
  } else if (is_pof2(size())) {
    out = p2p_rd_allgather(data, nbytes);
  } else {
    out = p2p_ring_allgatherv(data, nbytes, Coll::allgather);
  }
  coll_check_result(out);
  return out;
}

std::vector<std::vector<std::byte>> Comm::allgatherv_bytes(const void* data, std::size_t nbytes,
                                                           std::source_location loc) {
  perturb();
  coll_begin(Coll::allgatherv, nbytes, 0, -1, check::Site::of(loc));
  std::vector<std::vector<std::byte>> out;
  if (backend() == Backend::reference) {
    out = ref_gather(data, nbytes, true);
  } else {
    out = p2p_ring_allgatherv(data, nbytes, Coll::allgatherv);
  }
  coll_check_result(out);
  return out;
}

std::vector<std::vector<std::byte>> Comm::alltoall_bytes(
    std::vector<std::vector<std::byte>> sendbufs, std::source_location loc) {
  ESAMR_ASSERT(static_cast<int>(sendbufs.size()) == size(), rank_,
               "par::alltoall: sendbufs holds " + std::to_string(sendbufs.size()) +
                   " buffers, expected one per rank (" + std::to_string(size()) + ")");
  perturb();
  std::size_t payload = 0;
  for (const auto& b : sendbufs) payload += b.size();
  coll_begin(Coll::alltoall, payload, 0, -1, check::Site::of(loc));
  if (backend() == Backend::reference) return ref_alltoall(std::move(sendbufs));
  return p2p_alltoall(std::move(sendbufs));
}

void Comm::allreduce_bytes(void* inout, std::size_t nbytes, const Combine& op,
                           std::source_location loc) {
  perturb();
  coll_begin(Coll::allreduce, nbytes, nbytes, -1, check::Site::of(loc));
  if (backend() == Backend::reference) {
    ref_allreduce(inout, nbytes, op);
  } else {
    p2p_rd_allreduce(inout, nbytes, op);
  }
  coll_check_result(inout, nbytes);
}

void Comm::reduce_bytes(void* inout, std::size_t nbytes, int root, const Combine& op,
                        std::source_location loc) {
  ESAMR_ASSERT(root >= 0 && root < size(), rank_,
               "par::reduce: root rank " + std::to_string(root) + " out of range [0, " +
                   std::to_string(size()) + ")");
  perturb();
  coll_begin(Coll::reduce, nbytes, nbytes, root, check::Site::of(loc));
  if (backend() == Backend::reference) {
    ref_reduce(inout, nbytes, root, op);
  } else {
    p2p_binomial_reduce(inout, nbytes, root, op);
  }
}

void Comm::exscan_bytes(const void* mine, void* prefix, std::size_t nbytes, const Combine& op,
                        std::source_location loc) {
  perturb();
  coll_begin(Coll::exscan, nbytes, nbytes, -1, check::Site::of(loc));
  if (backend() == Backend::reference) {
    ref_exscan(mine, prefix, nbytes, op);
  } else {
    p2p_chain_exscan(mine, prefix, nbytes, op);
  }
}

CommStatsSnapshot Comm::stats_snapshot() {
  const auto raw = ref_gather(&stats(), sizeof(CommStats), false);
  CommStatsSnapshot snap;
  snap.per_rank.resize(raw.size());
  for (std::size_t r = 0; r < raw.size(); ++r) {
    std::memcpy(&snap.per_rank[r], raw[r].data(), sizeof(CommStats));
    snap.total += snap.per_rank[r];
  }
  return snap;
}

}  // namespace esamr::par
