#include "sfem/dg_mesh.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace esamr::sfem {

namespace {

using forest::CoordXform;
using forest::LeafRef;
using forest::Topo;

/// Face-node alignment across a (possibly rotated) face connection: my face
/// node q corresponds to the neighbor's face node map[q]. X is the transform
/// from my tree frame to the neighbor's (nullptr within one tree). Valid for
/// any pair of equal-resolution face grids covering the same region.
template <int Dim>
std::vector<std::int32_t> make_node_map(int np, int myf, const CoordXform* x, int nbrf) {
  const auto t = face_tangents(Dim, myf);
  const auto u = face_tangents(Dim, nbrf);
  const int nf = ipow(np, Dim - 1);
  // For each of my tangential axes: target position among the neighbor's
  // tangential axes and index direction.
  std::array<int, 2> pos{0, 0};
  std::array<bool, 2> rev{false, false};
  for (int k = 0; k < Dim - 1; ++k) {
    int j = t[static_cast<std::size_t>(k)];
    bool r = false;
    if (x != nullptr) {
      j = -1;
      for (int jj = 0; jj < 3; ++jj) {
        if (x->perm[static_cast<std::size_t>(jj)] == t[static_cast<std::size_t>(k)]) j = jj;
      }
      r = x->sign[static_cast<std::size_t>(j)] < 0;
    }
    int p = -1;
    for (int q = 0; q < Dim - 1; ++q) {
      if (u[static_cast<std::size_t>(q)] == j) p = q;
    }
    if (p < 0) throw std::runtime_error("dg_mesh: face transform does not map tangents");
    pos[static_cast<std::size_t>(k)] = p;
    rev[static_cast<std::size_t>(k)] = r;
  }
  std::vector<std::int32_t> map(static_cast<std::size_t>(nf));
  for (int q = 0; q < nf; ++q) {
    std::array<int, 2> mi{q % np, Dim == 3 ? q / np : 0};
    std::array<int, 2> ni{0, 0};
    for (int k = 0; k < Dim - 1; ++k) {
      const int i = rev[static_cast<std::size_t>(k)] ? np - 1 - mi[static_cast<std::size_t>(k)]
                                                     : mi[static_cast<std::size_t>(k)];
      ni[static_cast<std::size_t>(pos[static_cast<std::size_t>(k)])] = i;
    }
    map[static_cast<std::size_t>(q)] = static_cast<std::int32_t>(ni[0] + (Dim == 3 ? np * ni[1] : 0));
  }
  return map;
}

template <int Dim>
const LeafRef<Dim>* find_exact(const std::vector<std::vector<LeafRef<Dim>>>& dir, int t,
                               const forest::Octant<Dim>& o) {
  const auto& v = dir[static_cast<std::size_t>(t)];
  const auto it = std::lower_bound(
      v.begin(), v.end(), o, [](const LeafRef<Dim>& a, const forest::Octant<Dim>& b) {
        return a.oct < b;
      });
  if (it != v.end() && it->oct == o) return &*it;
  return nullptr;
}

}  // namespace

template <int Dim>
DgMesh<Dim> DgMesh<Dim>::build(const forest::Forest<Dim>& f, const forest::GhostLayer<Dim>& g,
                               int degree, const GeomFn<Dim>& geom) {
  using Oct = forest::Octant<Dim>;
  DgMesh mesh;
  mesh.degree = degree;
  mesh.np = degree + 1;
  mesh.npf = ipow(mesh.np, Dim - 1);
  mesh.nv = ipow(mesh.np, Dim);
  mesh.n_local = f.num_local();
  mesh.basis = Basis1d::make(degree);
  mesh.forest = &f;
  mesh.ghost = &g;

  const int np = mesh.np, nv = mesh.nv, npf = mesh.npf;
  const auto n = static_cast<std::size_t>(mesh.n_local);
  mesh.faces.resize(n * nfaces);
  mesh.coords.resize(n * static_cast<std::size_t>(nv) * 3);
  mesh.jdet.resize(n * static_cast<std::size_t>(nv));
  mesh.jinv.resize(n * static_cast<std::size_t>(nv) * Dim * Dim);
  mesh.mass.resize(n * static_cast<std::size_t>(nv));
  mesh.fnormal.resize(n * nfaces * static_cast<std::size_t>(npf) * 3);
  mesh.fsj.resize(n * nfaces * static_cast<std::size_t>(npf));
  mesh.hmin.resize(n);

  const auto dir = forest::build_leaf_directory(f, g);
  const auto& conn = f.conn();
  constexpr double root_len = static_cast<double>(Oct::root_len);

  std::vector<double> dx(static_cast<std::size_t>(nv) * 3);  // scratch for one derivative sweep
  std::size_t e = 0;
  f.for_each_local([&](int t, const Oct& o) {
    // --- Node coordinates ---------------------------------------------------
    double* xyz = mesh.coords.data() + e * static_cast<std::size_t>(nv) * 3;
    const double h = static_cast<double>(o.size());
    for (int node = 0; node < nv; ++node) {
      std::array<int, 3> idx{node % np, (node / np) % np, Dim == 3 ? node / (np * np) : 0};
      std::array<double, Dim> ref{};
      for (int a = 0; a < Dim; ++a) {
        const double xi = mesh.basis.nodes[static_cast<std::size_t>(idx[static_cast<std::size_t>(a)])];
        ref[static_cast<std::size_t>(a)] = (o.coord(a) + 0.5 * (xi + 1.0) * h) / root_len;
      }
      const auto p = geom(t, ref);
      for (int d = 0; d < 3; ++d) xyz[node * 3 + d] = p[static_cast<std::size_t>(d)];
    }

    // --- Metric terms: J[d][a] = dx_d/dref_a by spectral differentiation ----
    std::vector<double> jmat(static_cast<std::size_t>(nv) * Dim * Dim);
    std::vector<double> comp(static_cast<std::size_t>(nv)), dcomp(static_cast<std::size_t>(nv));
    for (int d = 0; d < Dim; ++d) {
      for (int node = 0; node < nv; ++node) comp[static_cast<std::size_t>(node)] = xyz[node * 3 + d];
      for (int a = 0; a < Dim; ++a) {
        apply_axis(Dim, np, a, mesh.basis.diff.data(), comp.data(), dcomp.data());
        for (int node = 0; node < nv; ++node) {
          jmat[static_cast<std::size_t>((node * Dim + d) * Dim + a)] =
              dcomp[static_cast<std::size_t>(node)];
        }
      }
    }
    double hm = 1e300;
    for (int node = 0; node < nv; ++node) {
      const double* jm = jmat.data() + static_cast<std::size_t>(node) * Dim * Dim;
      double det;
      double inv[9];
      if constexpr (Dim == 2) {
        det = jm[0] * jm[3] - jm[1] * jm[2];
        inv[0] = jm[3] / det;   // dref0/dx
        inv[1] = -jm[1] / det;  // dref0/dy
        inv[2] = -jm[2] / det;  // dref1/dx
        inv[3] = jm[0] / det;   // dref1/dy
      } else {
        const double a00 = jm[0], a01 = jm[1], a02 = jm[2];
        const double a10 = jm[3], a11 = jm[4], a12 = jm[5];
        const double a20 = jm[6], a21 = jm[7], a22 = jm[8];
        det = a00 * (a11 * a22 - a12 * a21) - a01 * (a10 * a22 - a12 * a20) +
              a02 * (a10 * a21 - a11 * a20);
        inv[0] = (a11 * a22 - a12 * a21) / det;
        inv[1] = (a02 * a21 - a01 * a22) / det;
        inv[2] = (a01 * a12 - a02 * a11) / det;
        inv[3] = (a12 * a20 - a10 * a22) / det;
        inv[4] = (a00 * a22 - a02 * a20) / det;
        inv[5] = (a02 * a10 - a00 * a12) / det;
        inv[6] = (a10 * a21 - a11 * a20) / det;
        inv[7] = (a01 * a20 - a00 * a21) / det;
        inv[8] = (a00 * a11 - a01 * a10) / det;
      }
      if (det <= 0.0) throw std::runtime_error("dg_mesh: non-positive Jacobian");
      mesh.jdet[e * static_cast<std::size_t>(nv) + static_cast<std::size_t>(node)] = det;
      double wt = 1.0;
      std::array<int, 3> idx{node % np, (node / np) % np, Dim == 3 ? node / (np * np) : 0};
      for (int a = 0; a < Dim; ++a) {
        wt *= mesh.basis.weights[static_cast<std::size_t>(idx[static_cast<std::size_t>(a)])];
      }
      mesh.mass[e * static_cast<std::size_t>(nv) + static_cast<std::size_t>(node)] = det * wt;
      for (int a = 0; a < Dim; ++a) {
        double col = 0.0;
        for (int d = 0; d < Dim; ++d) {
          const double v = jm[d * Dim + a];
          col += v * v;
          mesh.jinv[((e * static_cast<std::size_t>(nv) + static_cast<std::size_t>(node)) * Dim +
                     static_cast<std::size_t>(a)) *
                        Dim +
                    static_cast<std::size_t>(d)] = inv[a * Dim + d];
        }
        hm = std::min(hm, 2.0 * std::sqrt(col));
      }
    }
    mesh.hmin[e] = hm;

    // --- Face geometry at my face nodes -------------------------------------
    for (int fc = 0; fc < nfaces; ++fc) {
      const int axis = fc / 2;
      const double sgn = (fc % 2) ? 1.0 : -1.0;
      const auto fni = face_node_indices(Dim, np, fc);
      for (int q = 0; q < npf; ++q) {
        const int node = fni[static_cast<std::size_t>(q)];
        const std::size_t nb = e * static_cast<std::size_t>(nv) + static_cast<std::size_t>(node);
        double nvec[3] = {0.0, 0.0, 0.0};
        for (int d = 0; d < Dim; ++d) {
          nvec[d] = sgn * mesh.jdet[nb] *
                    mesh.jinv[(nb * Dim + static_cast<std::size_t>(axis)) * Dim +
                              static_cast<std::size_t>(d)];
        }
        double len = 0.0;
        for (int d = 0; d < Dim; ++d) len += nvec[d] * nvec[d];
        len = std::sqrt(len);
        const std::size_t fb = (e * nfaces + static_cast<std::size_t>(fc)) *
                               static_cast<std::size_t>(npf) +
                               static_cast<std::size_t>(q);
        mesh.fsj[fb] = len;
        for (int d = 0; d < 3; ++d) {
          mesh.fnormal[fb * 3 + static_cast<std::size_t>(d)] = d < Dim ? nvec[d] / len : 0.0;
        }
      }
    }

    // --- Face neighbor classification ---------------------------------------
    for (int fc = 0; fc < nfaces; ++fc) {
      FaceSide& side = mesh.faces[e * nfaces + static_cast<std::size_t>(fc)];
      const Oct nb = o.face_neighbor(fc);
      int t2 = t;
      Oct nb2 = nb;
      const CoordXform* x = nullptr;
      int nbrface = fc ^ 1;
      if (!nb.inside_root()) {
        const auto& fconn = conn.face_connection(t, fc);
        if (fconn.tree < 0) {
          side.kind = FaceKind::boundary;
          continue;
        }
        t2 = fconn.tree;
        x = &fconn.xform;
        nb2 = x->template apply_octant<Dim>(nb);
        nbrface = fconn.face;
      }
      side.nbr_face = static_cast<std::int8_t>(nbrface);
      side.node_map = make_node_map<Dim>(np, fc, x, nbrface);
      if (const LeafRef<Dim>* same = find_exact<Dim>(dir, t2, nb2)) {
        side.kind = FaceKind::same;
        side.nbr[0] = same->index;
        side.nbr_ghost[0] = same->owner != f.comm().rank();
        continue;
      }
      if (nb2.level > 0) {
        if (const LeafRef<Dim>* big = find_exact<Dim>(dir, t2, nb2.parent())) {
          side.kind = FaceKind::coarse;
          side.nbr[0] = big->index;
          side.nbr_ghost[0] = big->owner != f.comm().rank();
          // My quadrant within the coarse face, in my own frame.
          const Oct par = nb.parent();
          const auto tang = face_tangents(Dim, fc);
          std::uint8_t bits = 0;
          for (int k = 0; k < Dim - 1; ++k) {
            if (nb.coord(tang[static_cast<std::size_t>(k)]) !=
                par.coord(tang[static_cast<std::size_t>(k)])) {
              bits |= static_cast<std::uint8_t>(1 << k);
            }
          }
          side.half_bits = bits;
          continue;
        }
      }
      // Finer neighbors: the children of nb touching my face.
      side.kind = FaceKind::fine;
      const auto tang = face_tangents(Dim, fc);
      for (int s = 0; s < nsub; ++s) {
        int cid = 0;
        if ((fc % 2) == 0) cid |= 1 << (fc / 2);  // toward me: high bit if I am on the low side
        for (int k = 0; k < Dim - 1; ++k) {
          if (s & (1 << k)) cid |= 1 << tang[static_cast<std::size_t>(k)];
        }
        Oct child = nb.child(cid);
        const Oct child2 = (x != nullptr) ? x->template apply_octant<Dim>(child) : child;
        const LeafRef<Dim>* fine = find_exact<Dim>(dir, t2, child2);
        if (fine == nullptr) {
          throw std::runtime_error("dg_mesh: missing fine neighbor (forest not 2:1 balanced?)");
        }
        side.nbr[static_cast<std::size_t>(s)] = fine->index;
        side.nbr_ghost[static_cast<std::size_t>(s)] = fine->owner != f.comm().rank();
      }
    }
    ++e;
  });
  return mesh;
}

template struct DgMesh<2>;
template struct DgMesh<3>;

}  // namespace esamr::sfem
