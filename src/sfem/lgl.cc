#include "sfem/lgl.h"

#include <cmath>
#include <stdexcept>

namespace esamr::sfem {

double legendre(int n, double x) {
  double p0 = 1.0, p1 = x;
  if (n == 0) return p0;
  for (int k = 2; k <= n; ++k) {
    const double p2 = ((2.0 * k - 1.0) * x * p1 - (k - 1.0) * p0) / k;
    p0 = p1;
    p1 = p2;
  }
  return p1;
}

namespace {

double legendre_deriv(int n, double x) {
  if (n == 0) return 0.0;
  // (1-x^2) P_n'(x) = n (P_{n-1}(x) - x P_n(x))
  const double num = n * (legendre(n - 1, x) - x * legendre(n, x));
  return num / (1.0 - x * x);
}

/// Barycentric weights of a node set.
std::vector<double> bary_weights(const std::vector<double>& x) {
  const std::size_t n = x.size();
  std::vector<double> w(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) w[i] /= (x[i] - x[j]);
    }
  }
  return w;
}

/// Gauss-Legendre nodes/weights (exact to degree 2m-1), for the exact mass
/// integrals behind the L2 projection operators.
void gauss_rule(int m, std::vector<double>& x, std::vector<double>& w) {
  x.resize(static_cast<std::size_t>(m));
  w.resize(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    double xi = -std::cos(M_PI * (i + 0.75) / (m + 0.5));
    for (int it = 0; it < 100; ++it) {
      const double p = legendre(m, xi);
      const double dp = m * (legendre(m - 1, xi) - xi * p) / (1.0 - xi * xi);
      const double dx = p / dp;
      xi -= dx;
      if (std::abs(dx) < 1e-15) break;
    }
    const double dp = m * (legendre(m - 1, xi) - xi * legendre(m, xi)) / (1.0 - xi * xi);
    x[static_cast<std::size_t>(i)] = xi;
    w[static_cast<std::size_t>(i)] = 2.0 / ((1.0 - xi * xi) * dp * dp);
  }
}

/// Solve the small dense system A X = B (A: n x n, B: n x m), both row-major.
/// Gaussian elimination with partial pivoting; sizes are O(10).
std::vector<double> dense_solve(std::vector<double> a, std::vector<double> b, int n, int m) {
  for (int k = 0; k < n; ++k) {
    int piv = k;
    for (int i = k + 1; i < n; ++i) {
      if (std::abs(a[static_cast<std::size_t>(i * n + k)]) >
          std::abs(a[static_cast<std::size_t>(piv * n + k)])) {
        piv = i;
      }
    }
    if (piv != k) {
      for (int j = 0; j < n; ++j) std::swap(a[static_cast<std::size_t>(k * n + j)], a[static_cast<std::size_t>(piv * n + j)]);
      for (int j = 0; j < m; ++j) std::swap(b[static_cast<std::size_t>(k * m + j)], b[static_cast<std::size_t>(piv * m + j)]);
    }
    const double d = a[static_cast<std::size_t>(k * n + k)];
    for (int i = k + 1; i < n; ++i) {
      const double f = a[static_cast<std::size_t>(i * n + k)] / d;
      for (int j = k; j < n; ++j) {
        a[static_cast<std::size_t>(i * n + j)] -= f * a[static_cast<std::size_t>(k * n + j)];
      }
      for (int j = 0; j < m; ++j) {
        b[static_cast<std::size_t>(i * m + j)] -= f * b[static_cast<std::size_t>(k * m + j)];
      }
    }
  }
  for (int k = n - 1; k >= 0; --k) {
    for (int j = 0; j < m; ++j) {
      double s = b[static_cast<std::size_t>(k * m + j)];
      for (int i = k + 1; i < n; ++i) {
        s -= a[static_cast<std::size_t>(k * n + i)] * b[static_cast<std::size_t>(i * m + j)];
      }
      b[static_cast<std::size_t>(k * m + j)] = s / a[static_cast<std::size_t>(k * n + k)];
    }
  }
  return b;
}

}  // namespace

std::vector<double> interpolation_matrix(const std::vector<double>& from_nodes,
                                         const std::vector<double>& to_points) {
  const std::size_t n = from_nodes.size();
  const std::size_t m = to_points.size();
  const auto w = bary_weights(from_nodes);
  std::vector<double> a(m * n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    // Exact-hit handling keeps node values reproduced bitwise.
    std::ptrdiff_t hit = -1;
    for (std::size_t j = 0; j < n; ++j) {
      if (to_points[i] == from_nodes[j]) hit = static_cast<std::ptrdiff_t>(j);
    }
    if (hit >= 0) {
      a[i * n + static_cast<std::size_t>(hit)] = 1.0;
      continue;
    }
    double denom = 0.0;
    for (std::size_t j = 0; j < n; ++j) denom += w[j] / (to_points[i] - from_nodes[j]);
    for (std::size_t j = 0; j < n; ++j) {
      a[i * n + j] = (w[j] / (to_points[i] - from_nodes[j])) / denom;
    }
  }
  return a;
}

Basis1d Basis1d::make(int degree) {
  if (degree < 1) throw std::runtime_error("Basis1d: degree must be >= 1");
  Basis1d b;
  b.degree = degree;
  b.np = degree + 1;
  const int n = degree;

  // LGL nodes: +-1 plus the roots of P_n'(x), found by Newton iteration from
  // Chebyshev-Gauss-Lobatto initial guesses.
  b.nodes.resize(static_cast<std::size_t>(b.np));
  b.nodes.front() = -1.0;
  b.nodes.back() = 1.0;
  for (int i = 1; i < n; ++i) {
    double x = -std::cos(M_PI * i / n);
    for (int it = 0; it < 100; ++it) {
      // f = P_n'(x); f' via the Legendre ODE:
      // (1-x^2) P_n'' = 2x P_n' - n(n+1) P_n.
      const double f = legendre_deriv(n, x);
      const double fp = (2.0 * x * f - n * (n + 1.0) * legendre(n, x)) / (1.0 - x * x);
      const double dx = f / fp;
      x -= dx;
      if (std::abs(dx) < 1e-15) break;
    }
    b.nodes[static_cast<std::size_t>(i)] = x;
  }

  b.weights.resize(static_cast<std::size_t>(b.np));
  for (int i = 0; i < b.np; ++i) {
    const double p = legendre(n, b.nodes[static_cast<std::size_t>(i)]);
    b.weights[static_cast<std::size_t>(i)] = 2.0 / (n * (n + 1.0) * p * p);
  }

  // Differentiation matrix from barycentric weights.
  const auto w = bary_weights(b.nodes);
  b.diff.assign(static_cast<std::size_t>(b.np) * b.np, 0.0);
  for (int i = 0; i < b.np; ++i) {
    double rowsum = 0.0;
    for (int j = 0; j < b.np; ++j) {
      if (i == j) continue;
      const double d = (w[static_cast<std::size_t>(j)] / w[static_cast<std::size_t>(i)]) /
                       (b.nodes[static_cast<std::size_t>(i)] - b.nodes[static_cast<std::size_t>(j)]);
      b.diff[static_cast<std::size_t>(i * b.np + j)] = d;
      rowsum += d;
    }
    b.diff[static_cast<std::size_t>(i * b.np + i)] = -rowsum;  // rows sum to zero
  }

  // Half-interval interpolation and L2 projection.
  for (int c = 0; c < 2; ++c) {
    std::vector<double> pts(static_cast<std::size_t>(b.np));
    for (int i = 0; i < b.np; ++i) {
      pts[static_cast<std::size_t>(i)] =
          0.5 * b.nodes[static_cast<std::size_t>(i)] + (c == 0 ? -0.5 : 0.5);
    }
    b.interp_half[c] = interpolation_matrix(b.nodes, pts);
  }

  // Exact L2 projection from the children back to the parent: solve
  // M P_c = (1/2) A_c^T diag(w_g) G, where all integrals use an exact Gauss
  // rule (the LGL-lumped variant is not exact and would not satisfy
  // sum_c P_c I_c = Id on polynomials).
  {
    std::vector<double> xg, wg;
    gauss_rule(b.np, xg, wg);
    const auto gm = interpolation_matrix(b.nodes, xg);  // nodes -> gauss points
    const int np = b.np, ng = static_cast<int>(xg.size());
    std::vector<double> mass(static_cast<std::size_t>(np) * np, 0.0);
    for (int i = 0; i < np; ++i) {
      for (int j = 0; j < np; ++j) {
        double s = 0.0;
        for (int q = 0; q < ng; ++q) {
          s += wg[static_cast<std::size_t>(q)] * gm[static_cast<std::size_t>(q * np + i)] *
               gm[static_cast<std::size_t>(q * np + j)];
        }
        mass[static_cast<std::size_t>(i * np + j)] = s;
      }
    }
    for (int c = 0; c < 2; ++c) {
      // Parent basis evaluated at the child-mapped Gauss points.
      std::vector<double> mapped(static_cast<std::size_t>(ng));
      for (int q = 0; q < ng; ++q) {
        mapped[static_cast<std::size_t>(q)] = 0.5 * xg[static_cast<std::size_t>(q)] + (c == 0 ? -0.5 : 0.5);
      }
      const auto am = interpolation_matrix(b.nodes, mapped);  // parent basis at mapped pts
      std::vector<double> rhs(static_cast<std::size_t>(np) * np, 0.0);
      for (int i = 0; i < np; ++i) {
        for (int j = 0; j < np; ++j) {
          double s = 0.0;
          for (int q = 0; q < ng; ++q) {
            s += 0.5 * wg[static_cast<std::size_t>(q)] * am[static_cast<std::size_t>(q * np + i)] *
                 gm[static_cast<std::size_t>(q * np + j)];
          }
          rhs[static_cast<std::size_t>(i * np + j)] = s;
        }
      }
      b.project_half[c] = dense_solve(mass, rhs, np, np);
    }
  }
  return b;
}

}  // namespace esamr::sfem
