// One-dimensional spectral-element building blocks (mangll reproduction,
// paper §II-E): Legendre-Gauss-Lobatto nodes and quadrature weights,
// barycentric interpolation, differentiation matrices, and the half-interval
// interpolation / L2-projection operators used at 2:1 non-conforming faces
// and for solution transfer under refinement/coarsening.
#pragma once

#include <vector>

namespace esamr::sfem {

/// Everything the tensor-product kernels need for one polynomial degree.
struct Basis1d {
  int degree = 0;
  int np = 1;  ///< number of nodes, degree + 1

  std::vector<double> nodes;    ///< LGL nodes on [-1, 1], ascending
  std::vector<double> weights;  ///< LGL quadrature weights
  std::vector<double> diff;     ///< differentiation matrix D[i*np+j]: (du/dx)(x_i) = sum_j D_ij u_j

  /// Interpolation from the parent interval to its halves:
  /// interp_half[c][i*np+j] evaluates the parent Lagrange basis j at the
  /// i-th node of child c (c=0 -> [-1,0], c=1 -> [0,1]).
  std::vector<double> interp_half[2];
  /// L2 projection from child c back to the parent:
  /// parent = sum_c project_half[c] * child_c reassembles the parent's L2
  /// best approximation; project_half[c] = (1/2) M^{-1} I_c^T M.
  std::vector<double> project_half[2];

  static Basis1d make(int degree);
};

/// Barycentric Lagrange interpolation matrix: row i evaluates the Lagrange
/// basis on `from_nodes` at `to_points[i]`.
std::vector<double> interpolation_matrix(const std::vector<double>& from_nodes,
                                         const std::vector<double>& to_points);

/// Legendre polynomial P_n(x) (used for weights and tests).
double legendre(int n, double x);

}  // namespace esamr::sfem
