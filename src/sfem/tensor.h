// Tensor-product kernels for nodal spectral elements: apply a 1D operator
// along one axis of an np^dim nodal array, and index helpers for faces of
// the tensor grid. Axis 0 is the fastest-running index.
#pragma once

#include <array>
#include <vector>

namespace esamr::sfem {

constexpr int ipow(int b, int e) {
  int r = 1;
  for (int i = 0; i < e; ++i) r *= b;
  return r;
}

/// out = (A along `axis`) applied to u; u and out are np^dim arrays and must
/// not alias. A is np x np, row-major (row = output node).
inline void apply_axis(int dim, int np, int axis, const double* a, const double* u, double* out) {
  const int stride = ipow(np, axis);
  const int total = ipow(np, dim);
  for (int base = 0; base < total; ++base) {
    if ((base / stride) % np != 0) continue;
    for (int k = 0; k < np; ++k) {
      double acc = 0.0;
      const double* arow = a + k * np;
      for (int j = 0; j < np; ++j) acc += arow[j] * u[base + j * stride];
      out[base + k * stride] = acc;
    }
  }
}

/// Volume index of the node with per-axis indices idx[0..dim).
inline int node_index(int dim, int np, const std::array<int, 3>& idx) {
  int r = idx[0];
  if (dim > 1) r += np * idx[1];
  if (dim > 2) r += np * np * idx[2];
  return r;
}

/// The tangential axes of face f (normal axis f/2), ascending.
inline std::array<int, 2> face_tangents(int dim, int f) {
  std::array<int, 2> t{-1, -1};
  int k = 0;
  for (int a = 0; a < dim; ++a) {
    if (a != f / 2) t[static_cast<std::size_t>(k++)] = a;
  }
  return t;
}

/// Volume indices of the nodes of face f, in face enumeration: tangential
/// axes ascending, lower axis fastest. Size np^(dim-1).
inline std::vector<int> face_node_indices(int dim, int np, int f) {
  const int axis = f / 2;
  const int side = f % 2;
  const auto t = face_tangents(dim, f);
  const int nf = ipow(np, dim - 1);
  std::vector<int> out(static_cast<std::size_t>(nf));
  for (int q = 0; q < nf; ++q) {
    std::array<int, 3> idx{0, 0, 0};
    idx[static_cast<std::size_t>(axis)] = side ? np - 1 : 0;
    idx[static_cast<std::size_t>(t[0])] = q % np;
    if (dim == 3) idx[static_cast<std::size_t>(t[1])] = q / np;
    out[static_cast<std::size_t>(q)] = node_index(dim, np, idx);
  }
  return out;
}

/// Apply a 1D operator along one tangential direction of a face array
/// (np^(dim-1) values; dir = 0 is the fast index).
inline void apply_face_axis(int dim, int np, int dir, const double* a, const double* u,
                            double* out) {
  apply_axis(dim - 1, np, dir, a, u, out);
}

}  // namespace esamr::sfem
