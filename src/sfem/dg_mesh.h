// DgMesh: the element/face view of a 2:1-balanced forest used by the
// discontinuous Galerkin solvers (mangll reproduction, paper §II-E).
//
// For every local element face it records the neighbor configuration:
//   * boundary — physical domain boundary,
//   * same     — one equal-size neighbor,
//   * coarse   — the neighbor is one level coarser (this face is one of the
//                2^(Dim-1) subfaces of the neighbor's face),
//   * fine     — 2^(Dim-1) half-size neighbors across this face,
// together with a face-node alignment map that absorbs the relative rotation
// of inter-tree connections (paper Fig. 3), so the flux kernels are
// orientation-agnostic. Geometry (coordinates, metric terms, face normals)
// is sampled at the tensor LGL nodes of each element and differentiated
// spectrally.
#pragma once

#include <cstdint>
#include <span>

#include "forest/ghost.h"
#include "sfem/geometry.h"
#include "sfem/lgl.h"
#include "sfem/tensor.h"

namespace esamr::sfem {

template <int Dim>
struct DgMesh {
  static constexpr int nfaces = 2 * Dim;
  static constexpr int nsub = 1 << (Dim - 1);  ///< subfaces per face

  enum class FaceKind : std::uint8_t { boundary, same, coarse, fine };

  struct FaceSide {
    FaceKind kind = FaceKind::boundary;
    /// Neighbor element indices: slot 0 for same/coarse; all nsub slots for
    /// fine (indexed by subface bits over my ascending tangential axes).
    std::array<std::int32_t, nsub> nbr{};
    std::array<std::uint8_t, nsub> nbr_ghost{};
    std::int8_t nbr_face = -1;  ///< the neighbor's face id in its own frame
    /// Alignment: my face node q corresponds to the neighbor's face node
    /// node_map[q] (grids of equal resolution: full faces for same, the
    /// subface pairing for coarse/fine). Identity within a tree.
    std::vector<std::int32_t> node_map;
    /// coarse only: my position within the neighbor's face, as bits over my
    /// ascending tangential axes.
    std::uint8_t half_bits = 0;
  };

  int degree = 0;
  int np = 0;   ///< nodes per direction
  int npf = 0;  ///< nodes per face, np^(Dim-1)
  int nv = 0;   ///< nodes per element, np^Dim
  std::int64_t n_local = 0;
  Basis1d basis;

  std::vector<FaceSide> faces;  ///< n_local * nfaces

  // Per-element geometry at the tensor nodes.
  std::vector<double> coords;   ///< n_local*nv*3 physical positions
  std::vector<double> jdet;     ///< n_local*nv det(dx/dref)
  std::vector<double> jinv;     ///< n_local*nv*Dim*Dim, (a,d) entry = d ref_a / d x_d
  std::vector<double> mass;     ///< n_local*nv diagonal mass: detJ * tensor weight
  // Per-face geometry at my face nodes.
  std::vector<double> fnormal;  ///< n_local*nfaces*npf*3 outward unit normals
  std::vector<double> fsj;      ///< n_local*nfaces*npf surface Jacobians
  std::vector<double> hmin;     ///< n_local: shortest physical edge (dt estimates)

  const forest::Forest<Dim>* forest = nullptr;
  const forest::GhostLayer<Dim>* ghost = nullptr;

  static DgMesh build(const forest::Forest<Dim>& f, const forest::GhostLayer<Dim>& g, int degree,
                      const GeomFn<Dim>& geom);

  const FaceSide& face(std::int64_t elem, int f) const {
    return faces[static_cast<std::size_t>(elem * nfaces + f)];
  }

  /// Exchange per-element nodal fields (`per_elem` doubles each, n_local
  /// blocks in SFC order) into the ghost halo (one block per ghost element).
  std::vector<double> exchange(std::span<const double> fields, int per_elem) const {
    std::vector<double> mirror(ghost->mirrors.size() * static_cast<std::size_t>(per_elem));
    for (std::size_t m = 0; m < ghost->mirrors.size(); ++m) {
      const auto src = static_cast<std::size_t>(ghost->mirrors[m].local_index) *
                       static_cast<std::size_t>(per_elem);
      std::copy_n(fields.data() + src, per_elem, mirror.data() + m * per_elem);
    }
    return ghost->template exchange<double>(forest->comm(), mirror, per_elem);
  }
};

extern template struct DgMesh<2>;
extern template struct DgMesh<3>;

}  // namespace esamr::sfem
