#include "sfem/dg_elastic.h"

#include <cmath>
#include <cstring>

namespace esamr::sfem {

namespace {

// Carpenter & Kennedy (1994) five-stage fourth-order 2N-storage RK.
constexpr double kA[5] = {0.0, -567301805773.0 / 1357537059087.0,
                          -2404267990393.0 / 2016746695238.0, -3550918686646.0 / 2091501179385.0,
                          -1275806237668.0 / 842570457699.0};
constexpr double kB[5] = {1432997174477.0 / 9575080441755.0, 5161836677717.0 / 13612068292357.0,
                          1720146321549.0 / 2090206949498.0, 3134564353537.0 / 4481467310338.0,
                          2277821191437.0 / 14882151754819.0};

/// Voigt index of the symmetric pair (i, j).
template <int Dim>
constexpr int voigt(int i, int j) {
  if constexpr (Dim == 2) {
    if (i == j) return i;
    return 2;
  } else {
    if (i == j) return i;
    const int s = i + j;  // (1,2)->3, (0,2)->4, (0,1)->5
    return s == 3 ? 3 : (s == 2 ? 4 : 5);
  }
}

/// Apply a 1D operator along every axis listed (tensor sweep over a face
/// array), used for the mortar interpolations.
template <typename Real>
void face_sweep(int dim, int np, const std::vector<Real>* ops, int bits, Real* data, Real* tmp) {
  for (int k = 0; k < dim - 1; ++k) {
    const Real* a = ops[(bits >> k) & 1].data();
    const int stride = ipow(np, k);
    const int total = ipow(np, dim - 1);
    for (int base = 0; base < total; ++base) {
      if ((base / stride) % np != 0) continue;
      for (int r = 0; r < np; ++r) {
        Real acc = 0;
        for (int c = 0; c < np; ++c) acc += a[r * np + c] * data[base + c * stride];
        tmp[base + r * stride] = acc;
      }
    }
    std::memcpy(data, tmp, sizeof(Real) * static_cast<std::size_t>(total));
  }
}

}  // namespace

template <int Dim, typename Real>
ElasticWave<Dim, Real>::ElasticWave(
    const DgMesh<Dim>* mesh, const std::function<Material(const std::array<double, 3>&)>& material,
    Boundary boundary)
    : mesh_(mesh), boundary_(boundary) {
  const double t0 = par::thread_cpu_seconds();
  const int np = mesh_->np, nv = mesh_->nv;
  const auto n = static_cast<std::size_t>(mesh_->n_local);

  // Precision-converted geometry tables (the "device transfer" of Fig. 10).
  const auto convert = [](const std::vector<double>& src, std::vector<Real>& dst) {
    dst.resize(src.size());
    for (std::size_t i = 0; i < src.size(); ++i) dst[i] = static_cast<Real>(src[i]);
  };
  convert(mesh_->jinv, jinv_);
  convert(mesh_->jdet, jdet_);
  convert(mesh_->mass, mass_);
  convert(mesh_->fsj, fsj_);
  convert(mesh_->fnormal, fnormal_);
  convert(mesh_->basis.diff, diff_);
  for (int c = 0; c < 2; ++c) {
    convert(mesh_->basis.interp_half[c], interp_half_[c]);
    interp_half_t_[c].assign(static_cast<std::size_t>(np) * np, Real(0));
    for (int i = 0; i < np; ++i) {
      for (int j = 0; j < np; ++j) {
        interp_half_t_[c][static_cast<std::size_t>(i * np + j)] =
            static_cast<Real>(mesh_->basis.interp_half[c][static_cast<std::size_t>(j * np + i)]);
      }
    }
  }
  face_idx_.resize(DgMesh<Dim>::nfaces);
  for (int f = 0; f < DgMesh<Dim>::nfaces; ++f) {
    face_idx_[static_cast<std::size_t>(f)] = face_node_indices(Dim, np, f);
  }

  // Material sampling at the element nodes (double), then exchange the halo
  // and convert. Ghost tables are appended behind the local ones.
  std::vector<double> mat(n * static_cast<std::size_t>(nv) * 3);
  for (std::size_t i = 0; i < n * static_cast<std::size_t>(nv); ++i) {
    const Material m = material({mesh_->coords[i * 3], mesh_->coords[i * 3 + 1],
                                 mesh_->coords[i * 3 + 2]});
    mat[i * 3] = m.rho;
    mat[i * 3 + 1] = m.lambda;
    mat[i * 3 + 2] = m.mu;
    const double cp = std::sqrt((m.lambda + 2.0 * m.mu) / m.rho);
    max_speed_ = std::max(max_speed_, cp);
  }
  const auto ghost_mat = mesh_->exchange(mat, nv * 3);
  const std::size_t ntot = n + ghost_mat.size() / (static_cast<std::size_t>(nv) * 3);
  rho_.resize(ntot * static_cast<std::size_t>(nv));
  lambda_.resize(ntot * static_cast<std::size_t>(nv));
  mu_.resize(ntot * static_cast<std::size_t>(nv));
  zp_.resize(ntot * static_cast<std::size_t>(nv));
  zs_.resize(ntot * static_cast<std::size_t>(nv));
  const auto fill = [&](std::size_t dst, const double* src) {
    const double rho = src[0], lambda = src[1], mu = src[2];
    rho_[dst] = static_cast<Real>(rho);
    lambda_[dst] = static_cast<Real>(lambda);
    mu_[dst] = static_cast<Real>(mu);
    zp_[dst] = static_cast<Real>(std::sqrt((lambda + 2.0 * mu) * rho));
    zs_[dst] = static_cast<Real>(std::sqrt(mu * rho));
  };
  for (std::size_t i = 0; i < n * static_cast<std::size_t>(nv); ++i) fill(i, &mat[i * 3]);
  for (std::size_t i = 0; i < ghost_mat.size() / 3; ++i) {
    fill(n * static_cast<std::size_t>(nv) + i, &ghost_mat[i * 3]);
  }
  transfer_seconds_ = par::thread_cpu_seconds() - t0;
}

template <int Dim, typename Real>
void ElasticWave<Dim, Real>::rhs(std::span<const Real> q, std::span<Real> out) const {
  const int np = mesh_->np, nv = mesh_->nv, npf = mesh_->npf;
  const auto n = static_cast<std::size_t>(mesh_->n_local);
  const auto ghost_q = mesh_->ghost->template exchange<Real>(
      mesh_->forest->comm(),
      [&] {
        std::vector<Real> mirror(mesh_->ghost->mirrors.size() *
                                 static_cast<std::size_t>(ncomp * nv));
        for (std::size_t m = 0; m < mesh_->ghost->mirrors.size(); ++m) {
          std::copy_n(q.data() + static_cast<std::size_t>(mesh_->ghost->mirrors[m].local_index) *
                                     ncomp * nv,
                      static_cast<std::size_t>(ncomp) * nv,
                      mirror.data() + m * static_cast<std::size_t>(ncomp) * nv);
        }
        return mirror;
      }(),
      ncomp * nv);

  // Node-wise material of a (local or ghost) element.
  const auto mat_base = [&](std::int32_t elem, bool is_ghost) {
    return (is_ghost ? n + static_cast<std::size_t>(elem) : static_cast<std::size_t>(elem)) *
           static_cast<std::size_t>(nv);
  };
  const auto q_base = [&](std::int32_t elem, bool is_ghost) -> const Real* {
    return is_ghost ? ghost_q.data() + static_cast<std::size_t>(elem) * ncomp * nv
                    : q.data() + static_cast<std::size_t>(elem) * ncomp * nv;
  };

  // Stress components of one element at one node.
  const auto stress_at = [&](const Real* qe, std::size_t matb, int node, Real* sig) {
    Real tr = 0;
    for (int i = 0; i < Dim; ++i) tr += qe[(Dim + voigt<Dim>(i, i)) * nv + node];
    const Real lam = lambda_[matb + static_cast<std::size_t>(node)];
    const Real mu2 = Real(2) * mu_[matb + static_cast<std::size_t>(node)];
    for (int s = 0; s < nstrain; ++s) sig[s] = mu2 * qe[(Dim + s) * nv + node];
    for (int i = 0; i < Dim; ++i) sig[voigt<Dim>(i, i)] += lam * tr;
  };

  std::vector<Real> field(static_cast<std::size_t>(nv)), dref(static_cast<std::size_t>(nv));
  std::vector<Real> sigma(static_cast<std::size_t>(nstrain) * nv);
  std::vector<Real> grads(static_cast<std::size_t>(Dim + nstrain) * Dim * nv);

  // Tensor face weights.
  std::vector<Real> wf(static_cast<std::size_t>(npf));
  for (int qq = 0; qq < npf; ++qq) {
    double w = mesh_->basis.weights[static_cast<std::size_t>(qq % np)];
    if (Dim == 3) w *= mesh_->basis.weights[static_cast<std::size_t>(qq / np)];
    wf[static_cast<std::size_t>(qq)] = static_cast<Real>(w);
  }

  for (std::size_t e = 0; e < n; ++e) {
    const Real* qe = q.data() + e * static_cast<std::size_t>(ncomp) * nv;
    Real* oe = out.data() + e * static_cast<std::size_t>(ncomp) * nv;
    const std::size_t matb = e * static_cast<std::size_t>(nv);
    const std::size_t jb = e * static_cast<std::size_t>(nv);

    // Stress at nodes.
    for (int node = 0; node < nv; ++node) {
      Real sig[nstrain];
      stress_at(qe, matb, node, sig);
      for (int s = 0; s < nstrain; ++s) sigma[static_cast<std::size_t>(s * nv + node)] = sig[s];
    }
    // Physical gradients of v (fields 0..Dim-1) and sigma (Dim..Dim+nstrain-1)
    // via the Real-precision differentiation sweep.
    for (int fidx = 0; fidx < Dim + nstrain; ++fidx) {
      const Real* src = fidx < Dim ? qe + static_cast<std::size_t>(fidx) * nv
                                   : sigma.data() + static_cast<std::size_t>(fidx - Dim) * nv;
      Real* g = grads.data() + static_cast<std::size_t>(fidx) * Dim * nv;
      std::fill(g, g + static_cast<std::size_t>(Dim) * nv, Real(0));
      for (int a = 0; a < Dim; ++a) {
        // dref = D_a src
        const int stride = ipow(np, a);
        const int total = nv;
        for (int base = 0; base < total; ++base) {
          if ((base / stride) % np != 0) continue;
          for (int r = 0; r < np; ++r) {
            Real acc = 0;
            for (int cc = 0; cc < np; ++cc) {
              acc += diff_[static_cast<std::size_t>(r * np + cc)] * src[base + cc * stride];
            }
            dref[static_cast<std::size_t>(base + r * stride)] = acc;
          }
        }
        for (int node = 0; node < nv; ++node) {
          for (int d = 0; d < Dim; ++d) {
            g[d * nv + node] += jinv_[((jb + static_cast<std::size_t>(node)) * Dim +
                                       static_cast<std::size_t>(a)) *
                                          Dim +
                                      static_cast<std::size_t>(d)] *
                                dref[static_cast<std::size_t>(node)];
          }
        }
      }
    }

    // Volume terms.
    for (int node = 0; node < nv; ++node) {
      const Real inv_rho = Real(1) / rho_[matb + static_cast<std::size_t>(node)];
      for (int i = 0; i < Dim; ++i) {
        Real div = 0;
        for (int j = 0; j < Dim; ++j) {
          div += grads[(static_cast<std::size_t>(Dim + voigt<Dim>(i, j)) * Dim +
                        static_cast<std::size_t>(j)) *
                           nv +
                       static_cast<std::size_t>(node)];
        }
        oe[i * nv + node] = inv_rho * div;
      }
      for (int i = 0; i < Dim; ++i) {
        for (int j = i; j < Dim; ++j) {
          const Real gij = grads[(static_cast<std::size_t>(i) * Dim + static_cast<std::size_t>(j)) * nv +
                                 static_cast<std::size_t>(node)];
          const Real gji = grads[(static_cast<std::size_t>(j) * Dim + static_cast<std::size_t>(i)) * nv +
                                 static_cast<std::size_t>(node)];
          oe[(Dim + voigt<Dim>(i, j)) * nv + node] = Real(0.5) * (gij + gji);
        }
      }
    }

    // Face terms.
    std::vector<Real> vm(static_cast<std::size_t>(Dim) * npf), tm(static_cast<std::size_t>(Dim) * npf);
    std::vector<Real> vp(static_cast<std::size_t>(Dim) * npf), tp(static_cast<std::size_t>(Dim) * npf);
    std::vector<Real> zpm(static_cast<std::size_t>(npf)), zsm(static_cast<std::size_t>(npf));
    std::vector<Real> zpp(static_cast<std::size_t>(npf)), zsp(static_cast<std::size_t>(npf));
    std::vector<Real> nrm(static_cast<std::size_t>(3) * npf), sj(static_cast<std::size_t>(npf));
    std::vector<Real> tmp(static_cast<std::size_t>(npf)), tmp2(static_cast<std::size_t>(npf));
    std::vector<Real> liftv(static_cast<std::size_t>(ncomp) * npf);

    for (int f = 0; f < DgMesh<Dim>::nfaces; ++f) {
      const auto& side = mesh_->face(static_cast<std::int64_t>(e), f);
      const auto& fni = face_idx_[static_cast<std::size_t>(f)];
      const std::size_t fb0 =
          (e * DgMesh<Dim>::nfaces + static_cast<std::size_t>(f)) * static_cast<std::size_t>(npf);

      // My face data.
      for (int qq = 0; qq < npf; ++qq) {
        const int node = fni[static_cast<std::size_t>(qq)];
        Real sig[nstrain];
        stress_at(qe, matb, node, sig);
        for (int d = 0; d < 3; ++d) {
          nrm[static_cast<std::size_t>(qq * 3 + d)] = fnormal_[(fb0 + static_cast<std::size_t>(qq)) * 3 +
                                                               static_cast<std::size_t>(d)];
        }
        sj[static_cast<std::size_t>(qq)] = fsj_[fb0 + static_cast<std::size_t>(qq)];
        for (int i = 0; i < Dim; ++i) {
          vm[static_cast<std::size_t>(i * npf + qq)] = qe[i * nv + node];
          Real ti = 0;
          for (int j = 0; j < Dim; ++j) {
            ti += sig[voigt<Dim>(i, j)] * nrm[static_cast<std::size_t>(qq * 3 + j)];
          }
          tm[static_cast<std::size_t>(i * npf + qq)] = ti;
        }
        zpm[static_cast<std::size_t>(qq)] = zp_[matb + static_cast<std::size_t>(node)];
        zsm[static_cast<std::size_t>(qq)] = zs_[matb + static_cast<std::size_t>(node)];
      }

      // Neighbor face data for a given slot, aligned to my face enumeration
      // (or, for `fine`, to my subface enumeration).
      const auto fetch_plus = [&](int slot) {
        const Real* qn = q_base(side.nbr[static_cast<std::size_t>(slot)],
                                side.nbr_ghost[static_cast<std::size_t>(slot)] != 0);
        const std::size_t mb = mat_base(side.nbr[static_cast<std::size_t>(slot)],
                                        side.nbr_ghost[static_cast<std::size_t>(slot)] != 0);
        const auto& nfni = face_idx_[static_cast<std::size_t>(side.nbr_face)];
        for (int qq = 0; qq < npf; ++qq) {
          const int nn = nfni[static_cast<std::size_t>(side.node_map[static_cast<std::size_t>(qq)])];
          Real sig[nstrain];
          stress_at(qn, mb, nn, sig);
          for (int i = 0; i < Dim; ++i) {
            vp[static_cast<std::size_t>(i * npf + qq)] = qn[i * nv + nn];
            Real ti = 0;
            for (int j = 0; j < Dim; ++j) {
              ti += sig[voigt<Dim>(i, j)] * nrm[static_cast<std::size_t>(qq * 3 + j)];
            }
            tp[static_cast<std::size_t>(i * npf + qq)] = ti;
          }
          zpp[static_cast<std::size_t>(qq)] = zp_[mb + static_cast<std::size_t>(nn)];
          zsp[static_cast<std::size_t>(qq)] = zs_[mb + static_cast<std::size_t>(nn)];
        }
      };

      // Riemann corrections at the current quadrature set; writes the lifted
      // contributions (velocity and strain corrections scaled by w*sJ) into
      // liftv.
      const auto riemann = [&](Real scale) {
        for (int qq = 0; qq < npf; ++qq) {
          const Real* nq = &nrm[static_cast<std::size_t>(qq * 3)];
          Real vnm = 0, vnp = 0, tnm = 0, tnp = 0;
          for (int i = 0; i < Dim; ++i) {
            vnm += vm[static_cast<std::size_t>(i * npf + qq)] * nq[i];
            vnp += vp[static_cast<std::size_t>(i * npf + qq)] * nq[i];
            tnm += tm[static_cast<std::size_t>(i * npf + qq)] * nq[i];
            tnp += tp[static_cast<std::size_t>(i * npf + qq)] * nq[i];
          }
          // Exact interface (Godunov) states: the left-moving wave into my
          // medium carries jumps along (1, +Z), the right-moving wave into
          // the neighbor along (1, -Z):
          //   v* = [Z- v- + Z+ v+ + (t+ - t-)] / (Z- + Z+)
          //   t* = [Z+ t- + Z- t+ + Z- Z+ (v+ - v-)] / (Z- + Z+)
          const Real dp = zpm[static_cast<std::size_t>(qq)] + zpp[static_cast<std::size_t>(qq)];
          const Real vsn = (zpm[static_cast<std::size_t>(qq)] * vnm +
                            zpp[static_cast<std::size_t>(qq)] * vnp + (tnp - tnm)) /
                           dp;
          const Real tsn = (zpp[static_cast<std::size_t>(qq)] * tnm +
                            zpm[static_cast<std::size_t>(qq)] * tnp +
                            zpm[static_cast<std::size_t>(qq)] * zpp[static_cast<std::size_t>(qq)] *
                                (vnp - vnm)) /
                           dp;
          const Real ds = zsm[static_cast<std::size_t>(qq)] + zsp[static_cast<std::size_t>(qq)];
          Real vst[3] = {0, 0, 0}, tst[3] = {0, 0, 0};
          for (int i = 0; i < Dim; ++i) {
            const Real vtm = vm[static_cast<std::size_t>(i * npf + qq)] - vnm * nq[i];
            const Real vtp = vp[static_cast<std::size_t>(i * npf + qq)] - vnp * nq[i];
            const Real ttm = tm[static_cast<std::size_t>(i * npf + qq)] - tnm * nq[i];
            const Real ttp = tp[static_cast<std::size_t>(i * npf + qq)] - tnp * nq[i];
            if (ds > Real(0)) {
              vst[i] = (zsm[static_cast<std::size_t>(qq)] * vtm +
                        zsp[static_cast<std::size_t>(qq)] * vtp + (ttp - ttm)) /
                       ds;
              tst[i] = (zsp[static_cast<std::size_t>(qq)] * ttm +
                        zsm[static_cast<std::size_t>(qq)] * ttp +
                        zsm[static_cast<std::size_t>(qq)] * zsp[static_cast<std::size_t>(qq)] *
                            (vtp - vtm)) /
                       ds;
            } else {
              vst[i] = vtm;
              tst[i] = 0;
            }
          }
          const Real wsj = wf[static_cast<std::size_t>(qq)] * sj[static_cast<std::size_t>(qq)] * scale;
          for (int i = 0; i < Dim; ++i) {
            const Real vstar = vst[i] + vsn * nq[i];
            const Real tstar = tst[i] + tsn * nq[i];
            const Real dv = tstar - tm[static_cast<std::size_t>(i * npf + qq)];
            liftv[static_cast<std::size_t>(i * npf + qq)] = dv * wsj;
            // Strain correction (v* - v-) symmetrized with n.
            const Real dvel = vstar - vm[static_cast<std::size_t>(i * npf + qq)];
            for (int j = i; j < Dim; ++j) {
              const Real dvj = (vst[j] + vsn * nq[j]) - vm[static_cast<std::size_t>(j * npf + qq)];
              liftv[static_cast<std::size_t>((Dim + voigt<Dim>(i, j)) * npf + qq)] =
                  Real(0.5) * (dvel * nq[j] + dvj * nq[i]) * wsj;
            }
          }
        }
      };

      if (side.kind == DgMesh<Dim>::FaceKind::boundary) {
        // Mirror ghost states.
        for (int qq = 0; qq < npf; ++qq) {
          zpp[static_cast<std::size_t>(qq)] = zpm[static_cast<std::size_t>(qq)];
          zsp[static_cast<std::size_t>(qq)] = zsm[static_cast<std::size_t>(qq)];
          for (int i = 0; i < Dim; ++i) {
            if (boundary_ == Boundary::free_surface) {
              vp[static_cast<std::size_t>(i * npf + qq)] = vm[static_cast<std::size_t>(i * npf + qq)];
              tp[static_cast<std::size_t>(i * npf + qq)] = -tm[static_cast<std::size_t>(i * npf + qq)];
            } else {
              vp[static_cast<std::size_t>(i * npf + qq)] = -vm[static_cast<std::size_t>(i * npf + qq)];
              tp[static_cast<std::size_t>(i * npf + qq)] = tm[static_cast<std::size_t>(i * npf + qq)];
            }
          }
        }
        riemann(Real(1));
      } else if (side.kind == DgMesh<Dim>::FaceKind::same) {
        fetch_plus(0);
        riemann(Real(1));
      } else if (side.kind == DgMesh<Dim>::FaceKind::coarse) {
        // Interpolate the neighbor's full face to my quadrant after the
        // orientation alignment; my own data stays at my face nodes.
        fetch_plus(0);
        for (int i = 0; i < Dim; ++i) {
          face_sweep<Real>(Dim, np, interp_half_, side.half_bits,
                           &vp[static_cast<std::size_t>(i * npf)], tmp.data());
          face_sweep<Real>(Dim, np, interp_half_, side.half_bits,
                           &tp[static_cast<std::size_t>(i * npf)], tmp.data());
        }
        face_sweep<Real>(Dim, np, interp_half_, side.half_bits, zpp.data(), tmp.data());
        face_sweep<Real>(Dim, np, interp_half_, side.half_bits, zsp.data(), tmp.data());
        riemann(Real(1));
      } else {
        // fine: integrate each subface at the fine resolution and lift back.
        // Save my conforming face data once.
        std::vector<Real> vm0 = vm, tm0 = tm, zpm0 = zpm, zsm0 = zsm, nrm0 = nrm, sj0 = sj;
        std::vector<Real> acc(static_cast<std::size_t>(ncomp) * npf, Real(0));
        const Real scale = Dim == 3 ? Real(0.25) : Real(0.5);
        for (int s = 0; s < DgMesh<Dim>::nsub; ++s) {
          vm = vm0;
          tm = tm0;
          zpm = zpm0;
          zsm = zsm0;
          nrm = nrm0;
          sj = sj0;
          for (int i = 0; i < Dim; ++i) {
            face_sweep<Real>(Dim, np, interp_half_, s, &vm[static_cast<std::size_t>(i * npf)],
                             tmp.data());
            face_sweep<Real>(Dim, np, interp_half_, s, &tm[static_cast<std::size_t>(i * npf)],
                             tmp.data());
          }
          face_sweep<Real>(Dim, np, interp_half_, s, zpm.data(), tmp.data());
          face_sweep<Real>(Dim, np, interp_half_, s, zsm.data(), tmp.data());
          face_sweep<Real>(Dim, np, interp_half_, s, sj.data(), tmp.data());
          // Interpolate and renormalize the normal.
          std::vector<Real> nx(static_cast<std::size_t>(npf)), ny(static_cast<std::size_t>(npf)),
              nz(static_cast<std::size_t>(npf));
          for (int qq = 0; qq < npf; ++qq) {
            nx[static_cast<std::size_t>(qq)] = nrm[static_cast<std::size_t>(qq * 3)];
            ny[static_cast<std::size_t>(qq)] = nrm[static_cast<std::size_t>(qq * 3 + 1)];
            nz[static_cast<std::size_t>(qq)] = nrm[static_cast<std::size_t>(qq * 3 + 2)];
          }
          face_sweep<Real>(Dim, np, interp_half_, s, nx.data(), tmp.data());
          face_sweep<Real>(Dim, np, interp_half_, s, ny.data(), tmp.data());
          face_sweep<Real>(Dim, np, interp_half_, s, nz.data(), tmp.data());
          for (int qq = 0; qq < npf; ++qq) {
            const Real len = std::sqrt(nx[static_cast<std::size_t>(qq)] * nx[static_cast<std::size_t>(qq)] +
                                       ny[static_cast<std::size_t>(qq)] * ny[static_cast<std::size_t>(qq)] +
                                       nz[static_cast<std::size_t>(qq)] * nz[static_cast<std::size_t>(qq)]);
            nrm[static_cast<std::size_t>(qq * 3)] = nx[static_cast<std::size_t>(qq)] / len;
            nrm[static_cast<std::size_t>(qq * 3 + 1)] = ny[static_cast<std::size_t>(qq)] / len;
            nrm[static_cast<std::size_t>(qq * 3 + 2)] = nz[static_cast<std::size_t>(qq)] / len;
          }
          fetch_plus(s);
          riemann(scale);
          // Lift through the transposed interpolation and accumulate.
          for (int comp = 0; comp < ncomp; ++comp) {
            std::memcpy(tmp2.data(), &liftv[static_cast<std::size_t>(comp * npf)],
                        sizeof(Real) * static_cast<std::size_t>(npf));
            face_sweep<Real>(Dim, np, interp_half_t_, s, tmp2.data(), tmp.data());
            for (int qq = 0; qq < npf; ++qq) {
              acc[static_cast<std::size_t>(comp * npf + qq)] += tmp2[static_cast<std::size_t>(qq)];
            }
          }
        }
        std::memcpy(liftv.data(), acc.data(), sizeof(Real) * acc.size());
        // Restore for the common lifting below.
        vm = std::move(vm0);
      }

      // Apply the lifted corrections: velocity scaled by 1/rho.
      for (int qq = 0; qq < npf; ++qq) {
        const int node = fni[static_cast<std::size_t>(qq)];
        const Real im = Real(1) / mass_[jb + static_cast<std::size_t>(node)];
        const Real inv_rho = Real(1) / rho_[matb + static_cast<std::size_t>(node)];
        for (int i = 0; i < Dim; ++i) {
          oe[i * nv + node] += inv_rho * liftv[static_cast<std::size_t>(i * npf + qq)] * im;
        }
        for (int s = 0; s < nstrain; ++s) {
          oe[(Dim + s) * nv + node] += liftv[static_cast<std::size_t>((Dim + s) * npf + qq)] * im;
        }
      }
    }
  }
}

template <int Dim, typename Real>
void ElasticWave<Dim, Real>::step(std::vector<Real>& q, double dt) const {
  std::vector<Real> res(q.size(), Real(0)), k(q.size());
  for (int stage = 0; stage < 5; ++stage) {
    rhs(q, k);
    const Real a = static_cast<Real>(kA[stage]);
    const Real bdt = static_cast<Real>(kB[stage]);
    const Real rdt = static_cast<Real>(dt);
    for (std::size_t i = 0; i < q.size(); ++i) {
      res[i] = a * res[i] + rdt * k[i];
      q[i] += bdt * res[i];
    }
  }
}

template <int Dim, typename Real>
double ElasticWave<Dim, Real>::stable_dt(double cfl) const {
  double dt = 1e300;
  const double nn = std::max(1, mesh_->degree * mesh_->degree);
  for (std::size_t e = 0; e < static_cast<std::size_t>(mesh_->n_local); ++e) {
    dt = std::min(dt, cfl * mesh_->hmin[e] / (max_speed_ * nn));
  }
  return mesh_->forest->comm().allreduce(dt, par::ReduceOp::min);
}

template <int Dim, typename Real>
double ElasticWave<Dim, Real>::energy(std::span<const Real> q) const {
  const int nv = mesh_->nv;
  double acc = 0.0;
  for (std::size_t e = 0; e < static_cast<std::size_t>(mesh_->n_local); ++e) {
    const Real* qe = q.data() + e * static_cast<std::size_t>(ncomp) * nv;
    for (int node = 0; node < nv; ++node) {
      const std::size_t nb = e * static_cast<std::size_t>(nv) + static_cast<std::size_t>(node);
      double kin = 0.0, tr = 0.0, ee = 0.0;
      for (int i = 0; i < Dim; ++i) {
        kin += static_cast<double>(qe[i * nv + node]) * qe[i * nv + node];
        tr += qe[(Dim + voigt<Dim>(i, i)) * nv + node];
      }
      for (int i = 0; i < Dim; ++i) {
        for (int j = 0; j < Dim; ++j) {
          const double v = qe[(Dim + voigt<Dim>(i, j)) * nv + node];
          ee += v * v;
        }
      }
      acc += mesh_->mass[nb] * (0.5 * rho_[nb] * kin + mu_[nb] * ee +
                                0.5 * lambda_[nb] * tr * tr);
    }
  }
  return mesh_->forest->comm().allreduce(acc, par::ReduceOp::sum);
}

template class ElasticWave<2, double>;
template class ElasticWave<3, double>;
template class ElasticWave<2, float>;
template class ElasticWave<3, float>;

}  // namespace esamr::sfem
