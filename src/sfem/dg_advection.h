// Nodal discontinuous Galerkin discretization of the advection equation
//   dC/dt + u . grad C = 0   (paper §III-B, Eq. (1))
// with upwind numerical fluxes, tensor LGL collocation (diagonal mass), and
// the five-stage fourth-order low-storage Runge-Kutta scheme of Carpenter &
// Kennedy. Non-conforming (2:1) faces integrate from the fine side; the
// coarse side lifts subface contributions through the transposed
// half-interval interpolation (mortar consistency), so the scheme is
// conservative on affine meshes.
//
// AmrAdvectionDriver wraps the full dynamically adaptive loop of §III-B:
// advect — mark — Refine/Coarsen — Balance — transfer — Partition — rebuild,
// with separate busy-time accounting for AMR and time integration (the
// quantities reported in paper Fig. 5).
#pragma once

#include <functional>
#include <memory>

#include "sfem/dg_mesh.h"
#include "sfem/transfer.h"

namespace esamr::sfem {

template <int Dim>
class Advection {
 public:
  using Velocity = std::function<std::array<double, 3>(const std::array<double, 3>&)>;

  Advection(const DgMesh<Dim>* mesh, Velocity velocity);

  /// dC/dt for the nodal field c (n_local * np^Dim values, SFC order).
  /// Performs one ghost exchange.
  void rhs(std::span<const double> c, std::span<double> out) const;

  /// One low-storage RK(5,4) step.
  void step(std::vector<double>& c, double dt) const;

  /// Largest stable step from the CFL condition (global allreduce).
  double stable_dt(double cfl = 0.5) const;

  /// Global integral of c (conservation checks).
  double integral(std::span<const double> c) const;

  /// Global L2 error against an exact solution given in physical space.
  double l2_error(std::span<const double> c,
                  const std::function<double(const std::array<double, 3>&)>& exact) const;

  const DgMesh<Dim>& mesh() const { return *mesh_; }

 private:
  const DgMesh<Dim>* mesh_;
  Velocity velocity_;
  std::vector<double> fcoef_;     ///< n_local*nv*Dim: detJ * (dref_a/dx) . u
  std::vector<double> un_;        ///< n_local*nfaces*npf: u . n at my face nodes
  std::vector<double> max_speed_; ///< per element |u| bound
  std::vector<double> interp_t_[2];  ///< transposed half-interval interpolation
  std::vector<std::vector<int>> face_idx_;  ///< face -> volume node indices
};

/// Dynamically adaptive advection run (paper §III-B): owns the forest, mesh,
/// and solution, and re-adapts every `adapt_every` steps.
template <int Dim>
class AmrAdvectionDriver {
 public:
  AmrAdvectionDriver(par::Comm& comm, const forest::Connectivity<Dim>* conn, GeomFn<Dim> geom,
                     typename Advection<Dim>::Velocity velocity, int degree, int initial_level,
                     int max_level);

  /// Set the initial condition and adapt the initial mesh to it.
  void initialize(const std::function<double(const std::array<double, 3>&)>& c0,
                  int initial_adapt_rounds, double refine_tol, double coarsen_tol);

  /// Advance `nsteps` steps, re-adapting every `adapt_every` steps.
  void run(int nsteps, int adapt_every, double cfl, double refine_tol, double coarsen_tol);

  /// One adaptation: mark by the elementwise range of c, Refine + Coarsen +
  /// Balance + transfer + Partition + rebuild.
  void adapt(double refine_tol, double coarsen_tol);

  const std::vector<double>& solution() const { return c_; }
  const Advection<Dim>& advection() const { return *adv_; }
  const forest::Forest<Dim>& forest() const { return forest_; }

  /// Busy-time (thread CPU) accounting, for the Fig. 5 style breakdown.
  double amr_seconds() const { return t_amr_; }
  double solve_seconds() const { return t_solve_; }
  std::int64_t elements_adapted_away() const { return adapted_away_; }

 private:
  void rebuild();

  par::Comm* comm_;
  const forest::Connectivity<Dim>* conn_;
  GeomFn<Dim> geom_;
  typename Advection<Dim>::Velocity velocity_;
  int degree_;
  int min_level_;
  int max_level_;

  forest::Forest<Dim> forest_;
  std::unique_ptr<forest::GhostLayer<Dim>> ghost_;
  std::unique_ptr<DgMesh<Dim>> mesh_;
  std::unique_ptr<Advection<Dim>> adv_;
  std::vector<double> c_;

  double t_amr_ = 0.0;
  double t_solve_ = 0.0;
  std::int64_t adapted_away_ = 0;
};

extern template class Advection<2>;
extern template class Advection<3>;
extern template class AmrAdvectionDriver<2>;
extern template class AmrAdvectionDriver<3>;

}  // namespace esamr::sfem
