// Solution transfer between meshes (paper §III-B / §IV-A: "all solution
// fields are interpolated between meshes and redistributed according to the
// mesh partition").
//
//  * Under refinement, parent nodal values are interpolated to the children
//    (exact for the polynomial space).
//  * Under coarsening, children are combined by elementwise L2 projection.
//  * Both directions recurse, so a single transfer handles the combined
//    effect of Refine + Coarsen + Balance in one adaptation step.
//  * Repartitioning moves per-element payloads with Forest::partition_payload.
#pragma once

#include <span>
#include <vector>

#include "forest/forest.h"
#include "sfem/lgl.h"

namespace esamr::sfem {

/// Transfer per-element fields after local adaptation. `old_trees` is a copy
/// of the forest's per-tree leaf arrays taken before Refine/Coarsen/Balance;
/// `new_forest` is the adapted forest (same rank ownership — all three
/// operations are communication-free). `old_data` holds `ncomp` components
/// of np^Dim nodal values per old element ([elem][comp][node]); the result
/// is laid out the same way for the new elements.
template <int Dim>
std::vector<double> transfer_fields(const std::vector<std::vector<forest::Octant<Dim>>>& old_trees,
                                    const forest::Forest<Dim>& new_forest,
                                    std::span<const double> old_data, int ncomp,
                                    const Basis1d& basis);

extern template std::vector<double> transfer_fields<2>(
    const std::vector<std::vector<forest::Octant<2>>>&, const forest::Forest<2>&,
    std::span<const double>, int, const Basis1d&);
extern template std::vector<double> transfer_fields<3>(
    const std::vector<std::vector<forest::Octant<3>>>&, const forest::Forest<3>&,
    std::span<const double>, int, const Basis1d&);

}  // namespace esamr::sfem
