// Continuous Galerkin (tri/bi-linear) finite elements on the forest, built
// on Nodes (paper §II-E): isoparametric Q1 elements with Gauss quadrature,
// hanging-node constraints applied through the slot expansions of
// NodeNumbering, and distributed assembly into DistCsr. Provides the scalar
// diffusion operator (solver verification) and the variable-viscosity
// Stokes system with Dohrmann–Bochev pressure-projection stabilization used
// by the mantle-convection application (paper §IV-A, Eq. (2)).
#pragma once

#include <functional>

#include "forest/nodes.h"
#include "sfem/geometry.h"
#include "solver/dist_csr.h"

namespace esamr::sfem {

/// The cG function space: forest + node numbering + element corner geometry
/// + global Dirichlet boundary set.
template <int Dim>
struct CgSpace {
  static constexpr int nc = forest::Topo<Dim>::num_corners;
  using Key = typename forest::NodeNumbering<Dim>::Key;

  const forest::Forest<Dim>* forest = nullptr;
  const forest::NodeNumbering<Dim>* nodes = nullptr;
  GeomFn<Dim> geom;

  /// Physical corner positions per local element (isoparametric Q1).
  std::vector<std::array<std::array<double, 3>, nc>> corners;
  /// Sorted global ids of all Dirichlet-boundary nodes (replicated union).
  std::vector<std::int64_t> boundary_gids;

  static CgSpace build(const forest::Forest<Dim>& f, const forest::NodeNumbering<Dim>& n,
                       GeomFn<Dim> geom);

  bool on_boundary(std::int64_t gid) const {
    return std::binary_search(boundary_gids.begin(), boundary_gids.end(), gid);
  }

  /// Physical position of a node key.
  std::array<double, 3> position(const Key& k) const {
    std::array<double, Dim> ref{};
    for (int a = 0; a < Dim; ++a) {
      ref[static_cast<std::size_t>(a)] = static_cast<double>(k[static_cast<std::size_t>(a + 1)]) /
                                         forest::Octant<Dim>::root_len;
    }
    return geom(k[0], ref);
  }

  /// Physical position of a locally referenced gid.
  std::array<double, 3> position_of_gid(std::int64_t gid) const {
    return position(nodes->key_of(gid));
  }

  /// Positions of this rank's owned nodes in gid order.
  std::vector<std::array<double, 3>> owned_positions() const;
};

/// Assemble -div(kappa grad u) = f with Dirichlet data g on the physical
/// boundary (symmetric elimination). Returns the operator; `b` receives the
/// owned right-hand side.
template <int Dim>
solver::DistCsr assemble_poisson(const CgSpace<Dim>& space,
                                 const std::function<double(const std::array<double, 3>&)>& kappa,
                                 const std::function<double(const std::array<double, 3>&)>& f,
                                 const std::function<double(const std::array<double, 3>&)>& g,
                                 std::vector<double>& b);

/// The assembled Stokes saddle-point system (paper Eq. (2a)-(2b)):
///   [ A  B^T ] [u]   [f]
///   [ B  -C  ] [p] = [0]
/// with A the variable-viscosity vector Laplacian in strain form, B the
/// (negative) divergence, and C the Dohrmann–Bochev pressure-projection
/// stabilization scaled by 1/eta. Dofs are interleaved per node:
/// (u_0..u_{Dim-1}, p). Velocity Dirichlet (no-slip) on the physical
/// boundary; one pressure dof is pinned to remove the constant null space.
template <int Dim>
struct StokesSystem {
  solver::DistCsr matrix;                 ///< full saddle-point operator
  solver::DistCsr velocity_block;         ///< A alone (Dim dofs/node) for the AMG
  std::vector<double> rhs;                ///< owned right-hand side
  std::vector<double> pressure_diag;      ///< owned (1/eta)-mass lumped diag
  std::vector<std::int64_t> dof_offsets;  ///< rank offsets of the full system
};

/// `viscosity(e, x)` is evaluated per local element at quadrature points
/// (lets the caller bake in temperature / strain-rate dependence);
/// `body_force(x)` is the buoyancy term.
template <int Dim>
StokesSystem<Dim> assemble_stokes(
    const CgSpace<Dim>& space,
    const std::function<double(std::int64_t, const std::array<double, 3>&)>& viscosity,
    const std::function<std::array<double, 3>(const std::array<double, 3>&)>& body_force);

/// Fetch the values of arbitrary global dofs from their owners (one request
/// round-trip); the result is aligned with `gids`.
std::vector<double> fetch_gid_values(par::Comm& comm, const std::vector<std::int64_t>& offsets,
                                     std::span<const double> owned,
                                     const std::vector<std::int64_t>& gids);

extern template struct CgSpace<2>;
extern template struct CgSpace<3>;
extern template struct StokesSystem<2>;
extern template struct StokesSystem<3>;

}  // namespace esamr::sfem
