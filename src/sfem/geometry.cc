#include "sfem/geometry.h"

#include <cmath>

namespace esamr::sfem {

template <int Dim>
GeomFn<Dim> vertex_map(const forest::Connectivity<Dim>& conn) {
  return [&conn](int tree, std::array<double, Dim> ref) {
    const auto& tv = conn.tree_to_vertex()[static_cast<std::size_t>(tree)];
    std::array<double, 3> x{0.0, 0.0, 0.0};
    for (int c = 0; c < forest::Topo<Dim>::num_corners; ++c) {
      double w = 1.0;
      for (int a = 0; a < Dim; ++a) {
        const double r = ref[static_cast<std::size_t>(a)];
        w *= ((c >> a) & 1) ? r : (1.0 - r);
      }
      const auto& v =
          conn.vertex_coords()[static_cast<std::size_t>(tv[static_cast<std::size_t>(c)])];
      for (int d = 0; d < 3; ++d) {
        x[static_cast<std::size_t>(d)] += w * v[static_cast<std::size_t>(d)];
      }
    }
    return x;
  };
}

GeomFn<3> shell_map(double inner_radius, double outer_radius) {
  // Same face frames as Connectivity<3>::shell().
  struct Face {
    std::array<double, 3> normal, du, dv;
  };
  static const std::array<Face, 6> faces{{
      {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}},
      {{-1, 0, 0}, {0, 0, 1}, {0, 1, 0}},
      {{0, 1, 0}, {0, 0, 1}, {1, 0, 0}},
      {{0, -1, 0}, {1, 0, 0}, {0, 0, 1}},
      {{0, 0, 1}, {1, 0, 0}, {0, 1, 0}},
      {{0, 0, -1}, {0, 1, 0}, {1, 0, 0}},
  }};
  return [inner_radius, outer_radius](int tree, std::array<double, 3> ref) {
    const int face = tree / 4;
    const int pv = (tree % 4) / 2;
    const int pu = tree % 2;
    // Equiangular coordinates on [-1,1] across the whole cap.
    const double su = (pu + ref[0]) - 1.0;
    const double sv = (pv + ref[1]) - 1.0;
    const double a = std::tan(M_PI / 4.0 * su);
    const double b = std::tan(M_PI / 4.0 * sv);
    const Face& fr = faces[static_cast<std::size_t>(face)];
    std::array<double, 3> dir{};
    for (int d = 0; d < 3; ++d) {
      dir[static_cast<std::size_t>(d)] = fr.normal[static_cast<std::size_t>(d)] +
                                         a * fr.du[static_cast<std::size_t>(d)] +
                                         b * fr.dv[static_cast<std::size_t>(d)];
    }
    const double len = std::sqrt(dir[0] * dir[0] + dir[1] * dir[1] + dir[2] * dir[2]);
    const double rad = inner_radius + (outer_radius - inner_radius) * ref[2];
    return std::array<double, 3>{rad * dir[0] / len, rad * dir[1] / len, rad * dir[2] / len};
  };
}

GeomFn<2> annulus_map(int ntrees, double inner_radius, double outer_radius) {
  return [ntrees, inner_radius, outer_radius](int tree, std::array<double, 2> ref) {
    // Clockwise to match Connectivity<2>::ring (right-handed frame).
    const double theta = -2.0 * M_PI * (tree + ref[0]) / ntrees;
    const double rad = inner_radius + (outer_radius - inner_radius) * ref[1];
    return std::array<double, 3>{rad * std::cos(theta), rad * std::sin(theta), 0.0};
  };
}

template GeomFn<2> vertex_map<2>(const forest::Connectivity<2>&);
template GeomFn<3> vertex_map<3>(const forest::Connectivity<3>&);

}  // namespace esamr::sfem
