#include "sfem/cg_fem.h"

#include <algorithm>
#include <cmath>

namespace esamr::sfem {

namespace {

using solver::Triple;

/// Q1 shape values and reference gradients at xi in [0,1]^Dim.
template <int Dim>
void q1_shape(const std::array<double, Dim>& xi, double* n, double* dn /* [nc][Dim] */) {
  constexpr int nc = forest::Topo<Dim>::num_corners;
  for (int c = 0; c < nc; ++c) {
    double v = 1.0;
    for (int a = 0; a < Dim; ++a) {
      v *= ((c >> a) & 1) ? xi[static_cast<std::size_t>(a)] : 1.0 - xi[static_cast<std::size_t>(a)];
    }
    n[c] = v;
    for (int a = 0; a < Dim; ++a) {
      double d = ((c >> a) & 1) ? 1.0 : -1.0;
      for (int a2 = 0; a2 < Dim; ++a2) {
        if (a2 == a) continue;
        d *= ((c >> a2) & 1) ? xi[static_cast<std::size_t>(a2)] : 1.0 - xi[static_cast<std::size_t>(a2)];
      }
      dn[c * Dim + a] = d;
    }
  }
}

/// Gauss points/weights on [0,1], two per axis (exact for Q1 stiffness on
/// affine cells, standard for isoparametric Q1).
constexpr double kGp[2] = {0.5 - 0.28867513459481287, 0.5 + 0.28867513459481287};

/// Per-quadrature-point geometry of one element.
template <int Dim>
struct QPoint {
  std::array<double, 3> x;           // physical position
  double detw;                       // det(J) * weight
  double n[forest::Topo<Dim>::num_corners];
  double grad[forest::Topo<Dim>::num_corners][Dim];  // physical gradients
};

template <int Dim>
std::vector<QPoint<Dim>> element_qpoints(
    const std::array<std::array<double, 3>, forest::Topo<Dim>::num_corners>& xc) {
  constexpr int nc = forest::Topo<Dim>::num_corners;
  constexpr int nq = 1 << Dim;
  std::vector<QPoint<Dim>> qps;
  qps.reserve(nq);
  for (int q = 0; q < nq; ++q) {
    std::array<double, Dim> xi{};
    for (int a = 0; a < Dim; ++a) xi[static_cast<std::size_t>(a)] = kGp[(q >> a) & 1];
    QPoint<Dim> qp{};
    double dn[nc * Dim];
    q1_shape<Dim>(xi, qp.n, dn);
    double jm[Dim][Dim] = {};
    for (int c = 0; c < nc; ++c) {
      for (int d = 0; d < 3; ++d) {
        qp.x[static_cast<std::size_t>(d)] += qp.n[c] * xc[static_cast<std::size_t>(c)][static_cast<std::size_t>(d)];
      }
      for (int d = 0; d < Dim; ++d) {
        for (int a = 0; a < Dim; ++a) {
          jm[d][a] += dn[c * Dim + a] * xc[static_cast<std::size_t>(c)][static_cast<std::size_t>(d)];
        }
      }
    }
    double det, inv[Dim][Dim];
    if constexpr (Dim == 2) {
      det = jm[0][0] * jm[1][1] - jm[0][1] * jm[1][0];
      inv[0][0] = jm[1][1] / det;
      inv[0][1] = -jm[0][1] / det;
      inv[1][0] = -jm[1][0] / det;
      inv[1][1] = jm[0][0] / det;
    } else {
      det = jm[0][0] * (jm[1][1] * jm[2][2] - jm[1][2] * jm[2][1]) -
            jm[0][1] * (jm[1][0] * jm[2][2] - jm[1][2] * jm[2][0]) +
            jm[0][2] * (jm[1][0] * jm[2][1] - jm[1][1] * jm[2][0]);
      inv[0][0] = (jm[1][1] * jm[2][2] - jm[1][2] * jm[2][1]) / det;
      inv[0][1] = (jm[0][2] * jm[2][1] - jm[0][1] * jm[2][2]) / det;
      inv[0][2] = (jm[0][1] * jm[1][2] - jm[0][2] * jm[1][1]) / det;
      inv[1][0] = (jm[1][2] * jm[2][0] - jm[1][0] * jm[2][2]) / det;
      inv[1][1] = (jm[0][0] * jm[2][2] - jm[0][2] * jm[2][0]) / det;
      inv[1][2] = (jm[0][2] * jm[1][0] - jm[0][0] * jm[1][2]) / det;
      inv[2][0] = (jm[1][0] * jm[2][1] - jm[1][1] * jm[2][0]) / det;
      inv[2][1] = (jm[0][1] * jm[2][0] - jm[0][0] * jm[2][1]) / det;
      inv[2][2] = (jm[0][0] * jm[1][1] - jm[0][1] * jm[1][0]) / det;
    }
    // Weight: Gauss weights on [0,1] are 1/2 per axis.
    qp.detw = det / (1 << Dim);
    for (int c = 0; c < nc; ++c) {
      for (int d = 0; d < Dim; ++d) {
        double gsum = 0.0;
        for (int a = 0; a < Dim; ++a) gsum += inv[a][d] * dn[c * Dim + a];
        qp.grad[c][d] = gsum;
      }
    }
    qps.push_back(qp);
  }
  return qps;
}

/// Route (gid, value) pairs to the owners and accumulate into an owned
/// vector of size offsets[me+1]-offsets[me].
std::vector<double> assemble_vector(par::Comm& comm, const std::vector<std::int64_t>& offsets,
                                    const std::vector<std::pair<std::int64_t, double>>& pairs) {
  const int p = comm.size();
  const int me = comm.rank();
  struct Entry {
    std::int64_t gid;
    double v;
  };
  std::vector<std::vector<Entry>> send(static_cast<std::size_t>(p));
  const auto owner_of = [&](std::int64_t gid) {
    return static_cast<int>(std::upper_bound(offsets.begin(), offsets.end(), gid) -
                            offsets.begin()) - 1;
  };
  for (const auto& [gid, v] : pairs) {
    send[static_cast<std::size_t>(owner_of(gid))].push_back(Entry{gid, v});
  }
  const auto recv = comm.alltoallv(send);
  std::vector<double> out(
      static_cast<std::size_t>(offsets[static_cast<std::size_t>(me) + 1] -
                               offsets[static_cast<std::size_t>(me)]),
      0.0);
  for (const auto& from : recv) {
    for (const Entry& e : from) {
      out[static_cast<std::size_t>(e.gid - offsets[static_cast<std::size_t>(me)])] += e.v;
    }
  }
  return out;
}

}  // namespace

template <int Dim>
CgSpace<Dim> CgSpace<Dim>::build(const forest::Forest<Dim>& f,
                                 const forest::NodeNumbering<Dim>& n, GeomFn<Dim> geom) {
  CgSpace space;
  space.forest = &f;
  space.nodes = &n;
  space.geom = std::move(geom);
  constexpr double root = static_cast<double>(forest::Octant<Dim>::root_len);

  std::vector<std::int64_t> bdry;
  std::size_t e = 0;
  space.corners.resize(static_cast<std::size_t>(f.num_local()));
  f.for_each_local([&](int t, const forest::Octant<Dim>& o) {
    for (int c = 0; c < nc; ++c) {
      const auto cp = o.corner_point(c);
      std::array<double, Dim> ref{};
      for (int a = 0; a < Dim; ++a) ref[static_cast<std::size_t>(a)] = cp[static_cast<std::size_t>(a)] / root;
      space.corners[e][static_cast<std::size_t>(c)] = space.geom(t, ref);
    }
    // Dirichlet nodes: slots on element faces that lie on the physical
    // domain boundary (a hanging slot expands onto boundary masters).
    for (int fc = 0; fc < forest::Topo<Dim>::num_faces; ++fc) {
      if (!o.touches_root_face(fc)) continue;
      if (f.conn().face_connection(t, fc).tree >= 0) continue;
      for (int i = 0; i < forest::Topo<Dim>::corners_per_face; ++i) {
        const int c = forest::Topo<Dim>::face_corners[fc][i];
        for (const auto& contrib : n.elements[e][static_cast<std::size_t>(c)]) {
          bdry.push_back(contrib.gid);
        }
      }
    }
    ++e;
  });
  // Replicate the union so every rank skips the same rows/columns.
  for (const auto& from : f.comm().allgatherv(bdry)) {
    space.boundary_gids.insert(space.boundary_gids.end(), from.begin(), from.end());
  }
  std::sort(space.boundary_gids.begin(), space.boundary_gids.end());
  space.boundary_gids.erase(std::unique(space.boundary_gids.begin(), space.boundary_gids.end()),
                            space.boundary_gids.end());
  return space;
}

template <int Dim>
std::vector<std::array<double, 3>> CgSpace<Dim>::owned_positions() const {
  std::vector<std::array<double, 3>> out;
  out.reserve(nodes->owned_keys.size());
  for (const auto& k : nodes->owned_keys) out.push_back(position(k));
  return out;
}

template <int Dim>
solver::DistCsr assemble_poisson(const CgSpace<Dim>& space,
                                 const std::function<double(const std::array<double, 3>&)>& kappa,
                                 const std::function<double(const std::array<double, 3>&)>& f,
                                 const std::function<double(const std::array<double, 3>&)>& g,
                                 std::vector<double>& b) {
  constexpr int nc = forest::Topo<Dim>::num_corners;
  const auto& nodes = *space.nodes;
  par::Comm& comm = space.forest->comm();

  std::vector<Triple> triples;
  std::vector<std::pair<std::int64_t, double>> rhs;
  const auto n_local = static_cast<std::size_t>(space.forest->num_local());
  for (std::size_t e = 0; e < n_local; ++e) {
    double ke[nc][nc] = {};
    double fe[nc] = {};
    for (const auto& qp : element_qpoints<Dim>(space.corners[e])) {
      const double kq = kappa(qp.x) * qp.detw;
      const double fq = f(qp.x) * qp.detw;
      for (int a = 0; a < nc; ++a) {
        fe[a] += fq * qp.n[a];
        for (int bb = 0; bb < nc; ++bb) {
          double gg = 0.0;
          for (int d = 0; d < Dim; ++d) gg += qp.grad[a][d] * qp.grad[bb][d];
          ke[a][bb] += kq * gg;
        }
      }
    }
    for (int a = 0; a < nc; ++a) {
      for (const auto& ca : nodes.elements[e][static_cast<std::size_t>(a)]) {
        if (space.on_boundary(ca.gid)) continue;
        rhs.emplace_back(ca.gid, ca.weight * fe[a]);
        for (int bb = 0; bb < nc; ++bb) {
          for (const auto& cb : nodes.elements[e][static_cast<std::size_t>(bb)]) {
            const double v = ca.weight * cb.weight * ke[a][bb];
            if (space.on_boundary(cb.gid)) {
              rhs.emplace_back(ca.gid, -v * g(space.position_of_gid(cb.gid)));
            } else {
              triples.push_back(Triple{ca.gid, cb.gid, v});
            }
          }
        }
      }
    }
  }
  // Identity rows with boundary values, added once by the owner.
  for (std::size_t i = 0; i < nodes.owned_keys.size(); ++i) {
    const std::int64_t gid = nodes.owned_offset + static_cast<std::int64_t>(i);
    if (space.on_boundary(gid)) {
      triples.push_back(Triple{gid, gid, 1.0});
      rhs.emplace_back(gid, g(space.position(nodes.owned_keys[i])));
    }
  }
  b = assemble_vector(comm, nodes.rank_offsets, rhs);
  return solver::DistCsr::assemble(comm, nodes.rank_offsets, std::move(triples));
}

template <int Dim>
StokesSystem<Dim> assemble_stokes(
    const CgSpace<Dim>& space,
    const std::function<double(std::int64_t, const std::array<double, 3>&)>& viscosity,
    const std::function<std::array<double, 3>(const std::array<double, 3>&)>& body_force) {
  constexpr int nc = forest::Topo<Dim>::num_corners;
  constexpr int m = Dim + 1;  // dofs per node: velocities + pressure
  const auto& nodes = *space.nodes;
  par::Comm& comm = space.forest->comm();

  StokesSystem<Dim> sys;
  sys.dof_offsets.resize(nodes.rank_offsets.size());
  std::vector<std::int64_t> vel_offsets(nodes.rank_offsets.size());
  for (std::size_t r = 0; r < nodes.rank_offsets.size(); ++r) {
    sys.dof_offsets[r] = m * nodes.rank_offsets[r];
    vel_offsets[r] = Dim * nodes.rank_offsets[r];
  }
  const auto vdof = [&](std::int64_t node, int comp) { return node * m + comp; };
  const auto pdof = [&](std::int64_t node) { return node * m + Dim; };

  // The pressure constant null space: pin the pressure at global node 0.
  const std::int64_t pinned_p = pdof(0);

  std::vector<Triple> triples, vel_triples;
  std::vector<std::pair<std::int64_t, double>> rhs, pdiag;

  const auto n_local = static_cast<std::size_t>(space.forest->num_local());
  for (std::size_t e = 0; e < n_local; ++e) {
    // Element blocks.
    double a_e[nc * Dim][nc * Dim] = {};  // velocity-velocity
    double b_e[nc][nc * Dim] = {};        // pressure row x velocity col
    double m_e[nc][nc] = {};              // consistent pressure mass
    double mvec[nc] = {};                 // integrals of shape functions
    double f_e[nc * Dim] = {};
    double vol = 0.0, eta_bar = 0.0;
    int nq = 0;
    for (const auto& qp : element_qpoints<Dim>(space.corners[e])) {
      const double eta = viscosity(static_cast<std::int64_t>(e), qp.x);
      eta_bar += eta;
      ++nq;
      vol += qp.detw;
      const auto fb = body_force(qp.x);
      for (int a = 0; a < nc; ++a) {
        mvec[a] += qp.n[a] * qp.detw;
        for (int i = 0; i < Dim; ++i) {
          f_e[a * Dim + i] += fb[static_cast<std::size_t>(i)] * qp.n[a] * qp.detw;
        }
        for (int bb = 0; bb < nc; ++bb) {
          m_e[a][bb] += qp.n[a] * qp.n[bb] * qp.detw;
          double gg = 0.0;
          for (int d = 0; d < Dim; ++d) gg += qp.grad[a][d] * qp.grad[bb][d];
          for (int i = 0; i < Dim; ++i) {
            for (int j = 0; j < Dim; ++j) {
              // 2 eta eps(phi_b e_j) : eps(phi_a e_i)
              double v = eta * qp.grad[bb][i] * qp.grad[a][j];
              if (i == j) v += eta * gg;
              a_e[a * Dim + i][bb * Dim + j] += v * qp.detw;
            }
          }
          for (int j = 0; j < Dim; ++j) {
            b_e[a][bb * Dim + j] -= qp.n[a] * qp.grad[bb][j] * qp.detw;
          }
        }
      }
    }
    eta_bar = std::max(eta_bar / nq, 1e-300);

    // Dohrmann-Bochev stabilization: C = (1/eta)(M - mm^T / V).
    double c_e[nc][nc];
    for (int a = 0; a < nc; ++a) {
      for (int bb = 0; bb < nc; ++bb) {
        c_e[a][bb] = (m_e[a][bb] - mvec[a] * mvec[bb] / vol) / eta_bar;
      }
    }

    // Scatter with hanging expansions. Velocity Dirichlet: skip boundary
    // dofs (no-slip, g = 0, so no RHS correction needed).
    const auto& slots = nodes.elements[e];
    for (int a = 0; a < nc; ++a) {
      for (const auto& ca : slots[static_cast<std::size_t>(a)]) {
        const bool abdry = space.on_boundary(ca.gid);
        // Pressure lumped (1/eta) mass for the preconditioner.
        pdiag.emplace_back(ca.gid, ca.weight * mvec[a] / eta_bar);
        for (int i = 0; i < Dim && !abdry; ++i) {
          rhs.emplace_back(vdof(ca.gid, i), ca.weight * f_e[a * Dim + i]);
        }
        for (int bb = 0; bb < nc; ++bb) {
          for (const auto& cb : slots[static_cast<std::size_t>(bb)]) {
            const bool bbdry = space.on_boundary(cb.gid);
            const double w = ca.weight * cb.weight;
            // A block and the standalone velocity operator.
            if (!abdry && !bbdry) {
              for (int i = 0; i < Dim; ++i) {
                for (int j = 0; j < Dim; ++j) {
                  const double v = w * a_e[a * Dim + i][bb * Dim + j];
                  if (v != 0.0) {
                    triples.push_back(Triple{vdof(ca.gid, i), vdof(cb.gid, j), v});
                    vel_triples.push_back(Triple{ca.gid * Dim + i, cb.gid * Dim + j, v});
                  }
                }
              }
            }
            // B and B^T (pressure never Dirichlet except the pin).
            if (pdof(ca.gid) != pinned_p && !bbdry) {
              for (int j = 0; j < Dim; ++j) {
                const double v = w * b_e[a][bb * Dim + j];
                if (v != 0.0) {
                  triples.push_back(Triple{pdof(ca.gid), vdof(cb.gid, j), v});
                  triples.push_back(Triple{vdof(cb.gid, j), pdof(ca.gid), v});
                }
              }
            }
            // -C.
            if (pdof(ca.gid) != pinned_p && pdof(cb.gid) != pinned_p) {
              const double v = -w * c_e[a][bb];
              if (v != 0.0) triples.push_back(Triple{pdof(ca.gid), pdof(cb.gid), v});
            }
          }
        }
      }
    }
  }

  // Identity rows: velocity Dirichlet dofs and the pinned pressure.
  for (std::size_t i = 0; i < nodes.owned_keys.size(); ++i) {
    const std::int64_t gid = nodes.owned_offset + static_cast<std::int64_t>(i);
    if (space.on_boundary(gid)) {
      for (int c = 0; c < Dim; ++c) {
        triples.push_back(Triple{vdof(gid, c), vdof(gid, c), 1.0});
        vel_triples.push_back(Triple{gid * Dim + c, gid * Dim + c, 1.0});
      }
    }
    if (pdof(gid) == pinned_p) triples.push_back(Triple{pinned_p, pinned_p, 1.0});
  }

  sys.rhs = assemble_vector(comm, sys.dof_offsets, rhs);
  sys.pressure_diag = assemble_vector(comm, nodes.rank_offsets, pdiag);
  sys.matrix = solver::DistCsr::assemble(comm, sys.dof_offsets, std::move(triples));
  sys.velocity_block = solver::DistCsr::assemble(comm, vel_offsets, std::move(vel_triples));
  return sys;
}

std::vector<double> fetch_gid_values(par::Comm& comm, const std::vector<std::int64_t>& offsets,
                                     std::span<const double> owned,
                                     const std::vector<std::int64_t>& gids) {
  const int p = comm.size();
  const int me = comm.rank();
  const auto owner_of = [&](std::int64_t gid) {
    return static_cast<int>(std::upper_bound(offsets.begin(), offsets.end(), gid) -
                            offsets.begin()) - 1;
  };
  std::vector<std::vector<std::int64_t>> req(static_cast<std::size_t>(p));
  std::vector<std::vector<std::size_t>> slots(static_cast<std::size_t>(p));
  for (std::size_t i = 0; i < gids.size(); ++i) {
    const int r = owner_of(gids[i]);
    req[static_cast<std::size_t>(r)].push_back(gids[i]);
    slots[static_cast<std::size_t>(r)].push_back(i);
  }
  const auto wanted = comm.alltoallv(req);
  std::vector<std::vector<double>> reply(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    for (const std::int64_t gid : wanted[static_cast<std::size_t>(r)]) {
      reply[static_cast<std::size_t>(r)].push_back(
          owned[static_cast<std::size_t>(gid - offsets[static_cast<std::size_t>(me)])]);
    }
  }
  const auto got = comm.alltoallv(reply);
  std::vector<double> out(gids.size(), 0.0);
  for (int r = 0; r < p; ++r) {
    for (std::size_t k = 0; k < got[static_cast<std::size_t>(r)].size(); ++k) {
      out[slots[static_cast<std::size_t>(r)][k]] = got[static_cast<std::size_t>(r)][k];
    }
  }
  return out;
}

template struct CgSpace<2>;
template struct CgSpace<3>;
template struct StokesSystem<2>;
template struct StokesSystem<3>;

template solver::DistCsr assemble_poisson<2>(
    const CgSpace<2>&, const std::function<double(const std::array<double, 3>&)>&,
    const std::function<double(const std::array<double, 3>&)>&,
    const std::function<double(const std::array<double, 3>&)>&, std::vector<double>&);
template solver::DistCsr assemble_poisson<3>(
    const CgSpace<3>&, const std::function<double(const std::array<double, 3>&)>&,
    const std::function<double(const std::array<double, 3>&)>&,
    const std::function<double(const std::array<double, 3>&)>&, std::vector<double>&);
template StokesSystem<2> assemble_stokes<2>(
    const CgSpace<2>&, const std::function<double(std::int64_t, const std::array<double, 3>&)>&,
    const std::function<std::array<double, 3>(const std::array<double, 3>&)>&);
template StokesSystem<3> assemble_stokes<3>(
    const CgSpace<3>&, const std::function<double(std::int64_t, const std::array<double, 3>&)>&,
    const std::function<std::array<double, 3>(const std::array<double, 3>&)>&);

}  // namespace esamr::sfem
