// Discontinuous Galerkin solver for elastic/acoustic wave propagation in
// velocity–strain form (paper §IV-B, Eq. (3); the dGea substitute):
//   rho dv/dt = div( 2 mu E + lambda tr(E) I ) + f
//   dE/dt     = (grad v + grad v^T) / 2
// Upwind (Godunov) fluxes from the exact interface Riemann solution with
// per-side impedances — heterogeneous and coupled acoustic-elastic media
// (mu = 0 in fluid layers) are handled by the same formulas. Tensor LGL
// collocation, 2:1 mortar faces, and the five-stage low-storage RK match
// the advection solver.
//
// The class is templated on the scalar type: `double` is the reference CPU
// path; `float` is the "accelerated" path that substitutes for the paper's
// single-precision GPU kernel (paper Fig. 10; see DESIGN.md). The
// construction from a double-precision mesh measures the host-to-device
// style transfer explicitly.
#pragma once

#include <functional>

#include "sfem/dg_mesh.h"

namespace esamr::sfem {

/// Isotropic material sample.
struct Material {
  double rho;
  double lambda;
  double mu;
};

template <int Dim, typename Real = double>
class ElasticWave {
 public:
  /// Components: Dim velocities followed by the symmetric strain in Voigt
  /// order (2D: Exx, Eyy, Exy; 3D: Exx, Eyy, Ezz, Eyz, Exz, Exy).
  static constexpr int nstrain = Dim * (Dim + 1) / 2;
  static constexpr int ncomp = Dim + nstrain;

  enum class Boundary { free_surface, rigid };

  ElasticWave(const DgMesh<Dim>* mesh,
              const std::function<Material(const std::array<double, 3>&)>& material,
              Boundary boundary = Boundary::free_surface);

  /// State layout: per element, per component, per node:
  /// q[(e * ncomp + c) * nv + node].
  std::vector<Real> zero_state() const {
    return std::vector<Real>(static_cast<std::size_t>(mesh_->n_local) * ncomp * mesh_->nv,
                             Real(0));
  }

  void rhs(std::span<const Real> q, std::span<Real> out) const;
  void step(std::vector<Real>& q, double dt) const;
  double stable_dt(double cfl = 0.4) const;

  /// Physical energy: integral of rho |v|^2 / 2 + (2 mu E:E + lambda tr(E)^2)/2.
  double energy(std::span<const Real> q) const;

  /// Seconds of "device transfer" spent converting mesh/material data into
  /// the Real-precision kernel tables at construction.
  double transfer_seconds() const { return transfer_seconds_; }

  const DgMesh<Dim>& mesh() const { return *mesh_; }

 private:
  const DgMesh<Dim>* mesh_;
  Boundary boundary_;
  double transfer_seconds_ = 0.0;

  // Precision-converted kernel tables.
  std::vector<Real> jinv_, jdet_, mass_, fsj_, fnormal_;
  std::vector<Real> rho_, lambda_, mu_;        // per node
  std::vector<Real> zp_, zs_;                  // impedances at face nodes (my side)
  std::vector<Real> diff_;                     // 1D differentiation matrix
  std::vector<Real> interp_half_[2], interp_half_t_[2];
  std::vector<std::vector<int>> face_idx_;
  double max_speed_ = 0.0;
};

extern template class ElasticWave<2, double>;
extern template class ElasticWave<3, double>;
extern template class ElasticWave<2, float>;
extern template class ElasticWave<3, float>;

}  // namespace esamr::sfem
