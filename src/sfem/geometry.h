// Geometric maps from tree reference coordinates to physical space. The
// forest itself is purely topological; these diffeomorphisms are used only
// by the discretization layer and for visualization (paper §II-D).
#pragma once

#include <array>
#include <functional>

#include "forest/connectivity.h"

namespace esamr::sfem {

template <int Dim>
using GeomFn = std::function<std::array<double, 3>(int tree, std::array<double, Dim> ref)>;

/// Tri/bi-linear interpolation of the macro-mesh vertex coordinates (exact
/// for brick-type meshes; the fallback for anything else).
template <int Dim>
GeomFn<Dim> vertex_map(const forest::Connectivity<Dim>& conn);

/// Smooth equiangular cubed-sphere map for the 24-tree spherical shell of
/// Connectivity<3>::shell() (paper §III-B): six caps of four patches each,
/// local axes (u, v, radial). Radii match the shell() macro vertices.
GeomFn<3> shell_map(double inner_radius = 0.55, double outer_radius = 1.0);

/// Smooth annulus map for Connectivity<2>::ring(ntrees): x = angular,
/// y = radial.
GeomFn<2> annulus_map(int ntrees, double inner_radius = 0.55, double outer_radius = 1.0);

}  // namespace esamr::sfem
