#include "sfem/dg_advection.h"

#include <cmath>
#include <cstring>
#include <map>

namespace esamr::sfem {

namespace {

// Carpenter & Kennedy (1994) five-stage fourth-order 2N-storage RK.
constexpr double kRkA[5] = {0.0, -567301805773.0 / 1357537059087.0,
                            -2404267990393.0 / 2016746695238.0,
                            -3550918686646.0 / 2091501179385.0,
                            -1275806237668.0 / 842570457699.0};
constexpr double kRkB[5] = {1432997174477.0 / 9575080441755.0, 5161836677717.0 / 13612068292357.0,
                            1720146321549.0 / 2090206949498.0, 3134564353537.0 / 4481467310338.0,
                            2277821191437.0 / 14882151754819.0};

}  // namespace

template <int Dim>
Advection<Dim>::Advection(const DgMesh<Dim>* mesh, Velocity velocity)
    : mesh_(mesh), velocity_(std::move(velocity)) {
  const int np = mesh_->np, nv = mesh_->nv, npf = mesh_->npf;
  const auto n = static_cast<std::size_t>(mesh_->n_local);
  fcoef_.resize(n * static_cast<std::size_t>(nv) * Dim);
  un_.resize(n * DgMesh<Dim>::nfaces * static_cast<std::size_t>(npf));
  max_speed_.assign(n, 0.0);
  for (int c = 0; c < 2; ++c) {
    interp_t_[c].assign(static_cast<std::size_t>(np) * np, 0.0);
    for (int i = 0; i < np; ++i) {
      for (int j = 0; j < np; ++j) {
        interp_t_[c][static_cast<std::size_t>(i * np + j)] =
            mesh_->basis.interp_half[c][static_cast<std::size_t>(j * np + i)];
      }
    }
  }
  face_idx_.resize(DgMesh<Dim>::nfaces);
  for (int f = 0; f < DgMesh<Dim>::nfaces; ++f) {
    face_idx_[static_cast<std::size_t>(f)] = face_node_indices(Dim, np, f);
  }

  // Contravariant flux coefficients and face normal velocities.
  for (std::size_t e = 0; e < n; ++e) {
    for (int node = 0; node < nv; ++node) {
      const std::size_t nb = e * static_cast<std::size_t>(nv) + static_cast<std::size_t>(node);
      const std::array<double, 3> x{mesh_->coords[nb * 3], mesh_->coords[nb * 3 + 1],
                                    mesh_->coords[nb * 3 + 2]};
      const auto u = velocity_(x);
      double speed = 0.0;
      for (int d = 0; d < Dim; ++d) speed += u[static_cast<std::size_t>(d)] * u[static_cast<std::size_t>(d)];
      max_speed_[e] = std::max(max_speed_[e], std::sqrt(speed));
      for (int a = 0; a < Dim; ++a) {
        double ua = 0.0;
        for (int d = 0; d < Dim; ++d) {
          ua += mesh_->jinv[(nb * Dim + static_cast<std::size_t>(a)) * Dim +
                            static_cast<std::size_t>(d)] *
                u[static_cast<std::size_t>(d)];
        }
        fcoef_[nb * Dim + static_cast<std::size_t>(a)] = mesh_->jdet[nb] * ua;
      }
    }
    for (int f = 0; f < DgMesh<Dim>::nfaces; ++f) {
      const auto& fni = face_idx_[static_cast<std::size_t>(f)];
      for (int q = 0; q < npf; ++q) {
        const std::size_t nb =
            e * static_cast<std::size_t>(nv) + static_cast<std::size_t>(fni[static_cast<std::size_t>(q)]);
        const std::array<double, 3> x{mesh_->coords[nb * 3], mesh_->coords[nb * 3 + 1],
                                      mesh_->coords[nb * 3 + 2]};
        const auto u = velocity_(x);
        const std::size_t fb = (e * DgMesh<Dim>::nfaces + static_cast<std::size_t>(f)) *
                                   static_cast<std::size_t>(npf) +
                               static_cast<std::size_t>(q);
        double un = 0.0;
        for (int d = 0; d < Dim; ++d) {
          un += u[static_cast<std::size_t>(d)] * mesh_->fnormal[fb * 3 + static_cast<std::size_t>(d)];
        }
        un_[fb] = un;
      }
    }
  }
}

template <int Dim>
void Advection<Dim>::rhs(std::span<const double> c, std::span<double> out) const {
  const int np = mesh_->np, nv = mesh_->nv, npf = mesh_->npf;
  const auto n = static_cast<std::size_t>(mesh_->n_local);
  const Basis1d& b = mesh_->basis;
  const auto ghost_c = mesh_->exchange(c, nv);

  std::vector<double> flux(static_cast<std::size_t>(nv)), dflux(static_cast<std::size_t>(nv));
  // Face-local scratch.
  std::vector<double> cm(static_cast<std::size_t>(npf)), cp(static_cast<std::size_t>(npf));
  std::vector<double> t0(static_cast<std::size_t>(npf)), t1(static_cast<std::size_t>(npf));
  std::vector<double> lift(static_cast<std::size_t>(npf));

  // Tensor quadrature weight over the face tangentials.
  std::vector<double> wf(static_cast<std::size_t>(npf));
  for (int q = 0; q < npf; ++q) {
    double w = b.weights[static_cast<std::size_t>(q % np)];
    if (Dim == 3) w *= b.weights[static_cast<std::size_t>(q / np)];
    wf[static_cast<std::size_t>(q)] = w;
  }

  for (std::size_t e = 0; e < n; ++e) {
    const double* ce = c.data() + e * static_cast<std::size_t>(nv);
    double* oe = out.data() + e * static_cast<std::size_t>(nv);
    std::fill(oe, oe + nv, 0.0);

    // Volume term: -(1/detJ) sum_a D_a (fcoef_a * C).
    for (int a = 0; a < Dim; ++a) {
      for (int node = 0; node < nv; ++node) {
        const std::size_t nb = e * static_cast<std::size_t>(nv) + static_cast<std::size_t>(node);
        flux[static_cast<std::size_t>(node)] =
            fcoef_[nb * Dim + static_cast<std::size_t>(a)] * ce[node];
      }
      apply_axis(Dim, np, a, b.diff.data(), flux.data(), dflux.data());
      for (int node = 0; node < nv; ++node) {
        const std::size_t nb = e * static_cast<std::size_t>(nv) + static_cast<std::size_t>(node);
        oe[node] -= dflux[static_cast<std::size_t>(node)] / mesh_->jdet[nb];
      }
    }

    // Face terms.
    for (int f = 0; f < DgMesh<Dim>::nfaces; ++f) {
      const auto& side = mesh_->face(e, f);
      if (side.kind == DgMesh<Dim>::FaceKind::boundary) continue;
      const auto& fni = face_idx_[static_cast<std::size_t>(f)];
      for (int q = 0; q < npf; ++q) {
        cm[static_cast<std::size_t>(q)] = ce[fni[static_cast<std::size_t>(q)]];
      }
      const std::size_t fb0 =
          (e * DgMesh<Dim>::nfaces + static_cast<std::size_t>(f)) * static_cast<std::size_t>(npf);

      const auto nbr_values = [&](int slot, std::span<double> dst) {
        const double* src =
            side.nbr_ghost[static_cast<std::size_t>(slot)]
                ? ghost_c.data() + static_cast<std::size_t>(side.nbr[static_cast<std::size_t>(slot)]) * nv
                : c.data() + static_cast<std::size_t>(side.nbr[static_cast<std::size_t>(slot)]) * nv;
        const auto& nfni = face_idx_[static_cast<std::size_t>(side.nbr_face)];
        for (int q = 0; q < npf; ++q) {
          dst[static_cast<std::size_t>(q)] =
              src[nfni[static_cast<std::size_t>(side.node_map[static_cast<std::size_t>(q)])]];
        }
      };

      if (side.kind == DgMesh<Dim>::FaceKind::same ||
          side.kind == DgMesh<Dim>::FaceKind::coarse) {
        nbr_values(0, cp);
        if (side.kind == DgMesh<Dim>::FaceKind::coarse) {
          // Interpolate the (orientation-aligned) coarse face to my quadrant.
          std::memcpy(t0.data(), cp.data(), sizeof(double) * static_cast<std::size_t>(npf));
          for (int k = 0; k < Dim - 1; ++k) {
            apply_face_axis(Dim, np, k, b.interp_half[(side.half_bits >> k) & 1].data(), t0.data(),
                            t1.data());
            std::swap(t0, t1);
          }
          std::memcpy(cp.data(), t0.data(), sizeof(double) * static_cast<std::size_t>(npf));
        }
        for (int q = 0; q < npf; ++q) {
          const double un = un_[fb0 + static_cast<std::size_t>(q)];
          const double a = cm[static_cast<std::size_t>(q)], p = cp[static_cast<std::size_t>(q)];
          const double fstar = 0.5 * un * (a + p) - 0.5 * std::abs(un) * (p - a);
          // Strong form: u_t = -div F + M^{-1} \oint phi (F.n - F*) ds.
          const double df = un * a - fstar;
          const int node = fni[static_cast<std::size_t>(q)];
          const std::size_t nb = e * static_cast<std::size_t>(nv) + static_cast<std::size_t>(node);
          oe[node] += df * mesh_->fsj[fb0 + static_cast<std::size_t>(q)] *
                      wf[static_cast<std::size_t>(q)] / mesh_->mass[nb];
        }
      } else {  // fine: integrate each subface at the fine resolution
        const double scale = Dim == 3 ? 0.25 : 0.5;  // d(coarse ref)/d(fine ref) per axis
        for (int s = 0; s < DgMesh<Dim>::nsub; ++s) {
          // My values, u.n and sJ interpolated to the subface points.
          std::vector<double> csub(static_cast<std::size_t>(npf)),
              unsub(static_cast<std::size_t>(npf)), sjsub(static_cast<std::size_t>(npf));
          const auto interp_sub = [&](const double* src, double* dst) {
            std::memcpy(t0.data(), src, sizeof(double) * static_cast<std::size_t>(npf));
            for (int k = 0; k < Dim - 1; ++k) {
              apply_face_axis(Dim, np, k, b.interp_half[(s >> k) & 1].data(), t0.data(), t1.data());
              std::swap(t0, t1);
            }
            std::memcpy(dst, t0.data(), sizeof(double) * static_cast<std::size_t>(npf));
          };
          interp_sub(cm.data(), csub.data());
          interp_sub(un_.data() + fb0, unsub.data());
          interp_sub(mesh_->fsj.data() + fb0, sjsub.data());
          nbr_values(s, cp);
          for (int q = 0; q < npf; ++q) {
            const double un = unsub[static_cast<std::size_t>(q)];
            const double a = csub[static_cast<std::size_t>(q)], p = cp[static_cast<std::size_t>(q)];
            const double fstar = 0.5 * un * (a + p) - 0.5 * std::abs(un) * (p - a);
            lift[static_cast<std::size_t>(q)] =
                (un * a - fstar) * sjsub[static_cast<std::size_t>(q)] * wf[static_cast<std::size_t>(q)] * scale;
          }
          // Lift through the transposed interpolation onto my face nodes.
          std::memcpy(t0.data(), lift.data(), sizeof(double) * static_cast<std::size_t>(npf));
          for (int k = 0; k < Dim - 1; ++k) {
            apply_face_axis(Dim, np, k, interp_t_[(s >> k) & 1].data(), t0.data(), t1.data());
            std::swap(t0, t1);
          }
          for (int q = 0; q < npf; ++q) {
            const int node = fni[static_cast<std::size_t>(q)];
            const std::size_t nb = e * static_cast<std::size_t>(nv) + static_cast<std::size_t>(node);
            oe[node] += t0[static_cast<std::size_t>(q)] / mesh_->mass[nb];
          }
        }
      }
    }
  }
}

template <int Dim>
void Advection<Dim>::step(std::vector<double>& c, double dt) const {
  std::vector<double> res(c.size(), 0.0), k(c.size());
  for (int stage = 0; stage < 5; ++stage) {
    rhs(c, k);
    for (std::size_t i = 0; i < c.size(); ++i) {
      res[i] = kRkA[stage] * res[i] + dt * k[i];
      c[i] += kRkB[stage] * res[i];
    }
  }
}

template <int Dim>
double Advection<Dim>::stable_dt(double cfl) const {
  double dt = 1e300;
  for (std::size_t e = 0; e < static_cast<std::size_t>(mesh_->n_local); ++e) {
    const double s = std::max(max_speed_[e], 1e-14);
    const double nn = std::max(1, mesh_->degree * mesh_->degree);
    dt = std::min(dt, cfl * mesh_->hmin[e] / (s * nn));
  }
  return mesh_->forest->comm().allreduce(dt, par::ReduceOp::min);
}

template <int Dim>
double Advection<Dim>::integral(std::span<const double> c) const {
  double acc = 0.0;
  for (std::size_t i = 0; i < c.size(); ++i) acc += mesh_->mass[i] * c[i];
  return mesh_->forest->comm().allreduce(acc, par::ReduceOp::sum);
}

template <int Dim>
double Advection<Dim>::l2_error(
    std::span<const double> c,
    const std::function<double(const std::array<double, 3>&)>& exact) const {
  double acc = 0.0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    const std::array<double, 3> x{mesh_->coords[i * 3], mesh_->coords[i * 3 + 1],
                                  mesh_->coords[i * 3 + 2]};
    const double d = c[i] - exact(x);
    acc += mesh_->mass[i] * d * d;
  }
  return std::sqrt(mesh_->forest->comm().allreduce(acc, par::ReduceOp::sum));
}

// --- AmrAdvectionDriver -------------------------------------------------------

template <int Dim>
AmrAdvectionDriver<Dim>::AmrAdvectionDriver(par::Comm& comm,
                                            const forest::Connectivity<Dim>* conn,
                                            GeomFn<Dim> geom,
                                            typename Advection<Dim>::Velocity velocity, int degree,
                                            int initial_level, int max_level)
    : comm_(&comm), conn_(conn), geom_(std::move(geom)), velocity_(std::move(velocity)),
      degree_(degree), min_level_(initial_level), max_level_(max_level),
      forest_(forest::Forest<Dim>::new_uniform(comm, conn, initial_level)) {
  rebuild();
}

template <int Dim>
void AmrAdvectionDriver<Dim>::rebuild() {
  ghost_ = std::make_unique<forest::GhostLayer<Dim>>(forest::GhostLayer<Dim>::build(forest_));
  mesh_ = std::make_unique<DgMesh<Dim>>(DgMesh<Dim>::build(forest_, *ghost_, degree_, geom_));
  adv_ = std::make_unique<Advection<Dim>>(mesh_.get(), velocity_);
}

template <int Dim>
void AmrAdvectionDriver<Dim>::initialize(
    const std::function<double(const std::array<double, 3>&)>& c0, int initial_adapt_rounds,
    double refine_tol, double coarsen_tol) {
  const auto sample = [&]() {
    c_.resize(static_cast<std::size_t>(mesh_->n_local) * mesh_->nv);
    for (std::size_t i = 0; i < c_.size(); ++i) {
      c_[i] = c0({mesh_->coords[i * 3], mesh_->coords[i * 3 + 1], mesh_->coords[i * 3 + 2]});
    }
  };
  sample();
  for (int r = 0; r < initial_adapt_rounds; ++r) {
    adapt(refine_tol, coarsen_tol);
    sample();  // resample rather than interpolate while setting up
  }
}

template <int Dim>
void AmrAdvectionDriver<Dim>::adapt(double refine_tol, double coarsen_tol) {
  using Oct = forest::Octant<Dim>;
  const double t0 = par::thread_cpu_seconds();
  const int nv = mesh_->nv;

  // Elementwise indicator: nodal range of c.
  std::map<std::pair<int, std::uint64_t>, double> range;
  {
    std::size_t e = 0;
    forest_.for_each_local([&](int t, const Oct& o) {
      double lo = 1e300, hi = -1e300;
      for (int node = 0; node < nv; ++node) {
        const double v = c_[e * static_cast<std::size_t>(nv) + static_cast<std::size_t>(node)];
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      range[{t, o.key() ^ static_cast<std::uint64_t>(o.level) << 58}] = hi - lo;
      ++e;
    });
  }
  const auto key_of = [](const Oct& o) {
    return o.key() ^ static_cast<std::uint64_t>(o.level) << 58;
  };

  const auto old_count = forest_.num_global();
  std::vector<std::vector<Oct>> old_trees;
  old_trees.reserve(static_cast<std::size_t>(forest_.num_trees()));
  for (int t = 0; t < forest_.num_trees(); ++t) old_trees.push_back(forest_.tree(t));

  forest_.refine(max_level_, false, [&](int t, const Oct& o) {
    const auto it = range.find({t, key_of(o)});
    return it != range.end() && it->second > refine_tol;
  });
  forest_.coarsen(false, [&](int t, const Oct& parent) {
    if (parent.level < min_level_) return false;
    for (int ch = 0; ch < forest::Topo<Dim>::num_children; ++ch) {
      const auto it = range.find({t, key_of(parent.child(ch))});
      if (it == range.end() || it->second > coarsen_tol) return false;
    }
    return true;
  });
  forest_.balance();
  c_ = transfer_fields<Dim>(old_trees, forest_, c_, 1, mesh_->basis);
  forest_.partition_payload(nullptr, nv, c_);
  adapted_away_ += std::llabs(forest_.num_global() - old_count);
  rebuild();
  t_amr_ += par::thread_cpu_seconds() - t0;
}

template <int Dim>
void AmrAdvectionDriver<Dim>::run(int nsteps, int adapt_every, double cfl, double refine_tol,
                                  double coarsen_tol) {
  for (int s = 0; s < nsteps; ++s) {
    if (adapt_every > 0 && s > 0 && s % adapt_every == 0) adapt(refine_tol, coarsen_tol);
    const double t0 = par::thread_cpu_seconds();
    const double dt = adv_->stable_dt(cfl);
    adv_->step(c_, dt);
    t_solve_ += par::thread_cpu_seconds() - t0;
  }
}

template class Advection<2>;
template class Advection<3>;
template class AmrAdvectionDriver<2>;
template class AmrAdvectionDriver<3>;

}  // namespace esamr::sfem
