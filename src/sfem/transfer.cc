#include "sfem/transfer.h"

#include <cstring>
#include <stdexcept>

#include "sfem/tensor.h"

namespace esamr::sfem {

namespace {

/// Tensor interpolation of one element block (ncomp * np^Dim) to child
/// `cid`, or tensor L2 projection of a child block onto its parent
/// (accumulated: caller zeroes the target first).
template <int Dim>
void child_interp(const Basis1d& b, int ncomp, int cid, const double* parent, double* child) {
  const int np = b.np, nv = ipow(np, Dim);
  std::vector<double> t0(static_cast<std::size_t>(nv)), t1(static_cast<std::size_t>(nv));
  for (int c = 0; c < ncomp; ++c) {
    std::memcpy(t0.data(), parent + static_cast<std::size_t>(c) * nv,
                sizeof(double) * static_cast<std::size_t>(nv));
    for (int a = 0; a < Dim; ++a) {
      apply_axis(Dim, np, a, b.interp_half[(cid >> a) & 1].data(), t0.data(), t1.data());
      std::swap(t0, t1);
    }
    std::memcpy(child + static_cast<std::size_t>(c) * nv, t0.data(),
                sizeof(double) * static_cast<std::size_t>(nv));
  }
}

template <int Dim>
void child_project_accumulate(const Basis1d& b, int ncomp, int cid, const double* child,
                              double* parent) {
  const int np = b.np, nv = ipow(np, Dim);
  std::vector<double> t0(static_cast<std::size_t>(nv)), t1(static_cast<std::size_t>(nv));
  for (int c = 0; c < ncomp; ++c) {
    std::memcpy(t0.data(), child + static_cast<std::size_t>(c) * nv,
                sizeof(double) * static_cast<std::size_t>(nv));
    for (int a = 0; a < Dim; ++a) {
      apply_axis(Dim, np, a, b.project_half[(cid >> a) & 1].data(), t0.data(), t1.data());
      std::swap(t0, t1);
    }
    for (int node = 0; node < nv; ++node) {
      parent[static_cast<std::size_t>(c) * nv + static_cast<std::size_t>(node)] +=
          t0[static_cast<std::size_t>(node)];
    }
  }
}

}  // namespace

template <int Dim>
std::vector<double> transfer_fields(const std::vector<std::vector<forest::Octant<Dim>>>& old_trees,
                                    const forest::Forest<Dim>& new_forest,
                                    std::span<const double> old_data, int ncomp,
                                    const Basis1d& basis) {
  using Oct = forest::Octant<Dim>;
  constexpr int nchild = forest::Topo<Dim>::num_children;
  const int nv = ipow(basis.np, Dim);
  const auto per_elem = static_cast<std::size_t>(ncomp) * static_cast<std::size_t>(nv);

  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(new_forest.num_local()) * per_elem);

  std::size_t old_idx = 0;  // global old-element counter (matches old_data blocks)
  for (int t = 0; t < new_forest.num_trees(); ++t) {
    const auto& old_leaves = old_trees[static_cast<std::size_t>(t)];
    const auto& new_leaves = new_forest.tree(t);
    std::size_t i = 0, j = 0;

    // Emit data for every new leaf under `cur`, given `cur`'s data.
    const std::function<void(const Oct&, const double*)> emit_refined =
        [&](const Oct& cur, const double* data) {
          if (j < new_leaves.size() && new_leaves[j] == cur) {
            out.insert(out.end(), data, data + per_elem);
            ++j;
            return;
          }
          std::vector<double> child(per_elem);
          for (int c = 0; c < nchild; ++c) {
            child_interp<Dim>(basis, ncomp, c, data, child.data());
            emit_refined(cur.child(c), child.data());
          }
        };
    // Produce data for `cur` by projecting the old leaves below it.
    const std::function<void(const Oct&, double*)> gather_coarsened = [&](const Oct& cur,
                                                                          double* data) {
      if (i < old_leaves.size() && old_leaves[i] == cur) {
        const double* src = old_data.data() + old_idx * per_elem;
        std::memcpy(data, src, sizeof(double) * per_elem);
        ++i;
        ++old_idx;
        return;
      }
      std::fill(data, data + per_elem, 0.0);
      std::vector<double> child(per_elem);
      for (int c = 0; c < nchild; ++c) {
        gather_coarsened(cur.child(c), child.data());
        child_project_accumulate<Dim>(basis, ncomp, c, child.data(), data);
      }
    };

    while (i < old_leaves.size() || j < new_leaves.size()) {
      if (i < old_leaves.size() && j < new_leaves.size() && old_leaves[i] == new_leaves[j]) {
        const double* src = old_data.data() + old_idx * per_elem;
        out.insert(out.end(), src, src + per_elem);
        ++i;
        ++j;
        ++old_idx;
      } else if (j < new_leaves.size() && i < old_leaves.size() &&
                 old_leaves[i].contains(new_leaves[j])) {
        // Refinement below the old leaf.
        const double* src = old_data.data() + old_idx * per_elem;
        std::vector<double> tmp(src, src + per_elem);
        ++old_idx;
        const Oct parent = old_leaves[i];
        ++i;
        emit_refined(parent, tmp.data());
      } else if (j < new_leaves.size() && i < old_leaves.size() &&
                 new_leaves[j].contains(old_leaves[i])) {
        // Coarsening onto the new leaf.
        std::vector<double> tmp(per_elem);
        gather_coarsened(new_leaves[j], tmp.data());
        ++j;
        out.insert(out.end(), tmp.begin(), tmp.end());
      } else {
        throw std::runtime_error("transfer_fields: old and new forests do not cover each other");
      }
    }
  }
  return out;
}

template std::vector<double> transfer_fields<2>(const std::vector<std::vector<forest::Octant<2>>>&,
                                                const forest::Forest<2>&, std::span<const double>,
                                                int, const Basis1d&);
template std::vector<double> transfer_fields<3>(const std::vector<std::vector<forest::Octant<3>>>&,
                                                const forest::Forest<3>&, std::span<const double>,
                                                int, const Basis1d&);

}  // namespace esamr::sfem
