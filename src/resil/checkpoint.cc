#include "resil/checkpoint.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include <array>

#include "forest/stats.h"
#include "io/checked_file.h"
#include "par/inject.h"
#include "resil/crc32c.h"

namespace esamr::resil {

namespace {

namespace fs = std::filesystem;

constexpr char magic_bytes[8] = {'E', 'S', 'A', 'M', 'R', 'C', 'K', 'P'};
constexpr std::size_t max_section_name = 23;  // + NUL in SectionDesc::name

/// Fixed on-disk header. All fields little-endian on every platform we
/// target; the layout is padding-free by construction (static_assert below).
struct Header {
  char magic[8];
  std::uint32_t version;
  std::uint32_t dim;
  std::uint32_t writer_ranks;
  std::uint32_t num_trees;
  std::uint64_t conn_id;
  std::uint64_t num_octants;
  std::uint64_t step;
  std::uint32_t num_sections;
  std::uint32_t header_crc;  ///< CRC32C of all preceding header bytes
};
static_assert(sizeof(Header) == 56 && std::is_trivially_copyable_v<Header>);
constexpr std::size_t header_crc_span = offsetof(Header, header_crc);

struct SectionDesc {
  char name[24];         ///< NUL-terminated section name
  std::uint64_t offset;  ///< absolute file offset of the payload
  std::uint64_t nbytes;
  std::uint32_t crc;  ///< CRC32C of the payload
  std::uint32_t aux;  ///< per-octant double count for field sections, else 0
};
static_assert(sizeof(SectionDesc) == 48 && std::is_trivially_copyable_v<SectionDesc>);

/// Fully validated in-memory snapshot (rank 0 only).
struct Image {
  std::uint64_t step = 0;
  std::int64_t bytes_read = 0;
  std::uint32_t header_crc = 0;         ///< this file's header CRC (chain link)
  std::vector<forest::OctMsg> octants;  ///< global SFC sequence
  std::vector<NamedField> fields;       ///< global (all-octant) data
};

/// Fully validated in-memory delta checkpoint (rank 0 only). `octants` holds
/// the leaves inside the delta regions at write time; `fields` their values.
struct DeltaImage {
  std::uint64_t step = 0;
  std::int64_t bytes_read = 0;
  std::uint32_t header_crc = 0;
  std::uint64_t base_seq = 0;  ///< seq of the full-snapshot anchor
  std::uint64_t prev_seq = 0;  ///< seq of the immediate predecessor entry
  std::uint64_t prev_crc = 0;  ///< predecessor's header CRC
  std::vector<forest::OctMsg> regions;
  std::vector<forest::OctMsg> octants;
  std::vector<NamedField> fields;
};

[[noreturn]] void corrupt(const std::string& path, const std::string& what) {
  throw CheckpointCorrupt("checkpoint " + path + ": " + what);
}

// Process-wide commit-path counters (see disk_fault_stats in the header).
std::atomic<std::int64_t> g_commits{0};
std::atomic<std::int64_t> g_write_retries{0};
std::atomic<std::int64_t> g_eio{0};
std::atomic<std::int64_t> g_torn{0};
std::atomic<std::int64_t> g_trunc{0};
std::atomic<std::int64_t> g_verify_failures{0};

/// Apply an injected disk fault to the assembled temp file before the
/// reread-verify pass. The damage site is hashed from (seed, step, attempt)
/// so it is deterministic yet fresh per retry.
void apply_disk_fault(const std::string& tmp, par::detail::DiskFault fault, std::uint64_t seed,
                      std::uint64_t step, std::uint64_t attempt) {
  const std::uint64_t h =
      par::detail::mix64(par::detail::mix64(seed ^ 0xd15cda7aULL ^ step) ^ attempt);
  const auto fsize = static_cast<std::uint64_t>(fs::file_size(tmp));
  if (fsize == 0) return;
  if (fault == par::detail::DiskFault::truncate) {
    ++g_trunc;
    fs::resize_file(tmp, fsize - (1 + h % fsize));
    return;
  }
  // torn_tail: garble up to 64 trailing bytes in place (a torn rewrite).
  ++g_torn;
  const std::uint64_t len = 1 + h % (fsize < 64 ? fsize : 64);
  const auto mask = static_cast<unsigned char>((h >> 29) | 1u);  // nonzero
  std::vector<unsigned char> tail(len);
  io::CheckedFile fp(tmp, "r+b");
  fp.seek(static_cast<long>(fsize - len));
  fp.read_exact(tail.data(), tail.size());
  for (unsigned char& b : tail) b = static_cast<unsigned char>(b ^ mask);
  fp.seek(static_cast<long>(fsize - len));
  fp.write(tail.data(), tail.size());
  fp.close();
}

SectionDesc make_desc(const std::string& name, std::uint64_t offset, const void* data,
                      std::uint64_t nbytes, std::uint32_t aux) {
  SectionDesc d{};
  std::snprintf(d.name, sizeof(d.name), "%s", name.c_str());
  d.offset = offset;
  d.nbytes = nbytes;
  d.crc = crc32c(data, nbytes);
  d.aux = aux;
  return d;
}

/// Read and CRC-validate a snapshot on the calling rank (no communication).
Image load_image(const std::string& path, int dim, std::uint64_t conn_id, int num_trees) {
  io::CheckedFile fp(path, "rb");
  const long fsize = fp.size();
  if (fsize < static_cast<long>(sizeof(Header))) corrupt(path, "file shorter than header");

  Header h{};
  fp.read_exact(&h, sizeof(h));
  if (std::memcmp(h.magic, magic_bytes, sizeof(magic_bytes)) != 0) corrupt(path, "bad magic");
  if (crc32c(&h, header_crc_span) != h.header_crc) corrupt(path, "header CRC mismatch");
  if (h.version != checkpoint_format_version) {
    throw std::runtime_error("checkpoint " + path + ": unsupported format version " +
                             std::to_string(h.version));
  }
  if (h.dim != static_cast<std::uint32_t>(dim) ||
      h.num_trees != static_cast<std::uint32_t>(num_trees) || h.conn_id != conn_id) {
    throw std::runtime_error("checkpoint " + path +
                             ": snapshot does not match this forest (dim/trees/connectivity)");
  }

  std::vector<SectionDesc> descs(h.num_sections);
  fp.read_exact(descs.data(), descs.size() * sizeof(SectionDesc));
  const std::uint64_t data_start = sizeof(Header) + descs.size() * sizeof(SectionDesc);

  Image img;
  img.step = h.step;
  img.bytes_read = fsize;
  img.header_crc = h.header_crc;
  bool have_ranges = false, have_octants = false;
  std::vector<std::uint64_t> writer_counts;
  for (const SectionDesc& d : descs) {
    const std::string name(d.name, strnlen(d.name, sizeof(d.name)));
    if (d.offset < data_start || d.offset + d.nbytes > static_cast<std::uint64_t>(fsize)) {
      corrupt(path, "section '" + name + "' extends past end of file");
    }
    std::vector<std::byte> buf(d.nbytes);
    fp.seek(static_cast<long>(d.offset));
    fp.read_exact(buf.data(), buf.size());
    const std::uint32_t got = crc32c(buf.data(), buf.size());
    if (got != d.crc) {
      char msg[160];
      std::snprintf(msg, sizeof(msg),
                    "CRC mismatch in section '%s' at offset %llu (stored 0x%08x, computed 0x%08x)",
                    name.c_str(), static_cast<unsigned long long>(d.offset), d.crc, got);
      corrupt(path, msg);
    }
    if (name == "ranges") {
      if (d.nbytes != h.writer_ranks * sizeof(std::uint64_t)) {
        corrupt(path, "'ranges' section size does not match writer rank count");
      }
      writer_counts.resize(h.writer_ranks);
      std::memcpy(writer_counts.data(), buf.data(), buf.size());
      have_ranges = true;
    } else if (name == "octants") {
      if (d.nbytes != h.num_octants * sizeof(forest::OctMsg)) {
        corrupt(path, "'octants' section size does not match octant count");
      }
      img.octants.resize(h.num_octants);
      std::memcpy(img.octants.data(), buf.data(), buf.size());
      have_octants = true;
    } else {
      if (d.aux == 0 || d.nbytes != h.num_octants * d.aux * sizeof(double)) {
        corrupt(path, "field section '" + name + "' has inconsistent size");
      }
      NamedField f;
      f.name = name;
      f.per_oct = static_cast<int>(d.aux);
      f.data.resize(h.num_octants * d.aux);
      std::memcpy(f.data.data(), buf.data(), buf.size());
      img.fields.push_back(std::move(f));
    }
  }
  if (!have_ranges || !have_octants) corrupt(path, "missing 'ranges' or 'octants' section");
  std::uint64_t total = 0;
  for (const std::uint64_t c : writer_counts) total += c;
  if (total != h.num_octants) corrupt(path, "'ranges' does not sum to the octant count");
  return img;
}

/// Read and CRC-validate a delta checkpoint on the calling rank. Shares the
/// container format with full snapshots; the payload is the "dmeta" chain
/// link, the replicated delta regions, the leaves inside them, and the field
/// values on exactly those leaves.
DeltaImage load_delta_image(const std::string& path, int dim, std::uint64_t conn_id,
                            int num_trees) {
  io::CheckedFile fp(path, "rb");
  const long fsize = fp.size();
  if (fsize < static_cast<long>(sizeof(Header))) corrupt(path, "file shorter than header");

  Header h{};
  fp.read_exact(&h, sizeof(h));
  if (std::memcmp(h.magic, magic_bytes, sizeof(magic_bytes)) != 0) corrupt(path, "bad magic");
  if (crc32c(&h, header_crc_span) != h.header_crc) corrupt(path, "header CRC mismatch");
  if (h.version != checkpoint_format_version) {
    throw std::runtime_error("checkpoint " + path + ": unsupported format version " +
                             std::to_string(h.version));
  }
  if (h.dim != static_cast<std::uint32_t>(dim) ||
      h.num_trees != static_cast<std::uint32_t>(num_trees) || h.conn_id != conn_id) {
    throw std::runtime_error("checkpoint " + path +
                             ": snapshot does not match this forest (dim/trees/connectivity)");
  }

  std::vector<SectionDesc> descs(h.num_sections);
  fp.read_exact(descs.data(), descs.size() * sizeof(SectionDesc));
  const std::uint64_t data_start = sizeof(Header) + descs.size() * sizeof(SectionDesc);

  DeltaImage img;
  img.step = h.step;
  img.bytes_read = fsize;
  img.header_crc = h.header_crc;
  bool have_meta = false, have_regions = false, have_octants = false;
  for (const SectionDesc& d : descs) {
    const std::string name(d.name, strnlen(d.name, sizeof(d.name)));
    if (d.offset < data_start || d.offset + d.nbytes > static_cast<std::uint64_t>(fsize)) {
      corrupt(path, "section '" + name + "' extends past end of file");
    }
    std::vector<std::byte> buf(d.nbytes);
    fp.seek(static_cast<long>(d.offset));
    fp.read_exact(buf.data(), buf.size());
    const std::uint32_t got = crc32c(buf.data(), buf.size());
    if (got != d.crc) {
      char msg[160];
      std::snprintf(msg, sizeof(msg),
                    "CRC mismatch in section '%s' at offset %llu (stored 0x%08x, computed 0x%08x)",
                    name.c_str(), static_cast<unsigned long long>(d.offset), d.crc, got);
      corrupt(path, msg);
    }
    if (name == "dmeta") {
      if (d.nbytes != 3 * sizeof(std::uint64_t)) corrupt(path, "'dmeta' section has wrong size");
      std::uint64_t m[3];
      std::memcpy(m, buf.data(), sizeof(m));
      img.base_seq = m[0];
      img.prev_seq = m[1];
      img.prev_crc = m[2];
      have_meta = true;
    } else if (name == "dregions") {
      if (d.nbytes % sizeof(forest::OctMsg) != 0) {
        corrupt(path, "'dregions' section size is not a whole record count");
      }
      img.regions.resize(d.nbytes / sizeof(forest::OctMsg));
      std::memcpy(img.regions.data(), buf.data(), buf.size());
      have_regions = true;
    } else if (name == "doctants") {
      if (d.nbytes != h.num_octants * sizeof(forest::OctMsg)) {
        corrupt(path, "'doctants' section size does not match octant count");
      }
      img.octants.resize(h.num_octants);
      std::memcpy(img.octants.data(), buf.data(), buf.size());
      have_octants = true;
    } else {
      if (d.aux == 0 || d.nbytes != h.num_octants * d.aux * sizeof(double)) {
        corrupt(path, "field section '" + name + "' has inconsistent size");
      }
      NamedField f;
      f.name = name;
      f.per_oct = static_cast<int>(d.aux);
      f.data.resize(h.num_octants * d.aux);
      std::memcpy(f.data.data(), buf.data(), buf.size());
      img.fields.push_back(std::move(f));
    }
  }
  if (!have_meta || !have_regions || !have_octants) {
    corrupt(path, "missing 'dmeta', 'dregions' or 'doctants' section");
  }
  return img;
}

/// The header CRC of an existing ring entry (the chain link the next delta
/// must carry). False when the file cannot be read or its header is bad.
bool peek_header_crc(const std::string& path, std::uint32_t& out) {
  try {
    io::CheckedFile fp(path, "rb");
    if (fp.size() < static_cast<long>(sizeof(Header))) return false;
    Header h{};
    fp.read_exact(&h, sizeof(h));
    if (std::memcmp(h.magic, magic_bytes, sizeof(magic_bytes)) != 0) return false;
    if (crc32c(&h, header_crc_span) != h.header_crc) return false;
    out = h.header_crc;
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

/// Rank-0 atomic publish with write-then-reread-verify, shared by the full
/// and delta writers: assemble under a temp name via `write_body`, reread the
/// temp through `verify` (which must throw on bad bytes — the same CRC
/// validation restore uses), and only then rename over the target. Injected
/// disk faults (torn tail, truncation, transient EIO) are keyed on
/// (seed, step, attempt), so each retry draws a fresh hash and the bounded
/// loop converges; persistent failure throws CheckpointCorrupt.
template <typename WriteBody, typename Verify>
void publish_verified(const std::string& path, std::uint64_t step, const par::InjectConfig& inj,
                      WriteBody&& write_body, Verify&& verify) {
  const std::string tmp = path + ".tmp";
  constexpr int max_write_attempts = 5;
  for (int attempt = 0;; ++attempt) {
    const auto fault = par::detail::disk_fault(inj, step, static_cast<std::uint64_t>(attempt));
    if (fault == par::detail::DiskFault::eio) {
      // The device refused the write; nothing was committed this attempt.
      ++g_eio;
      if (attempt + 1 >= max_write_attempts) {
        corrupt(path, "persistent EIO while writing snapshot");
      }
      ++g_write_retries;
      continue;
    }
    {
      io::CheckedFile fp(tmp, "wb");
      write_body(fp);
      fp.close();
    }
    if (fault != par::detail::DiskFault::none) {
      apply_disk_fault(tmp, fault, inj.seed, step, static_cast<std::uint64_t>(attempt));
    }
    try {
      verify(tmp);
      break;  // the bytes on disk round-trip every CRC: safe to publish
    } catch (const std::runtime_error&) {
      // CheckpointCorrupt or a short read: the attempt's bytes are bad.
      ++g_verify_failures;
      if (attempt + 1 >= max_write_attempts) {
        std::remove(tmp.c_str());
        corrupt(path, "write verification failed after " + std::to_string(max_write_attempts) +
                          " attempts");
      }
      ++g_write_retries;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("checkpoint publish: cannot rename " + tmp + " to " + path);
  }
  ++g_commits;
}

/// Pack restore metadata (step, bytes, field names/widths) for the bcast
/// that tells non-root ranks what the snapshot contains.
std::vector<std::byte> pack_meta(const Image& img) {
  std::vector<std::byte> out;
  const auto put = [&out](const void* p, std::size_t n) {
    const auto* b = static_cast<const std::byte*>(p);
    out.insert(out.end(), b, b + n);
  };
  const auto put_u64 = [&put](std::uint64_t v) { put(&v, sizeof(v)); };
  put_u64(img.step);
  put_u64(static_cast<std::uint64_t>(img.bytes_read));
  put_u64(img.fields.size());
  for (const NamedField& f : img.fields) {
    put_u64(static_cast<std::uint64_t>(f.per_oct));
    put_u64(f.name.size());
    put(f.name.data(), f.name.size());
  }
  return out;
}

struct Meta {
  std::uint64_t step = 0;
  std::int64_t bytes_read = 0;
  std::vector<std::pair<std::string, int>> fields;  // (name, per_oct)
};

Meta unpack_meta(const std::vector<std::byte>& in) {
  std::size_t pos = 0;
  const auto get = [&](void* p, std::size_t n) {
    std::memcpy(p, in.data() + pos, n);
    pos += n;
  };
  const auto get_u64 = [&get] {
    std::uint64_t v;
    get(&v, sizeof(v));
    return v;
  };
  Meta m;
  m.step = get_u64();
  m.bytes_read = static_cast<std::int64_t>(get_u64());
  const std::uint64_t nf = get_u64();
  for (std::uint64_t i = 0; i < nf; ++i) {
    const int per_oct = static_cast<int>(get_u64());
    std::string name(get_u64(), '\0');
    get(name.data(), name.size());
    m.fields.emplace_back(std::move(name), per_oct);
  }
  return m;
}

/// The elastic half of restore: rank 0 holds the full snapshot; everyone
/// builds a forest (empty away from rank 0) and the existing partition path
/// redistributes octants and interleaved fields to the canonical SFC split.
template <int Dim>
Restored<Dim> distribute(par::Comm& comm, const forest::Connectivity<Dim>& conn, Image&& img) {
  std::vector<std::byte> meta;
  if (comm.rank() == 0) meta = pack_meta(img);
  comm.bcast_bytes(meta, 0);
  const Meta m = unpack_meta(meta);

  std::vector<std::vector<forest::Octant<Dim>>> trees(
      static_cast<std::size_t>(conn.num_trees()));
  if (comm.rank() == 0) {
    for (const forest::OctMsg& om : img.octants) {
      if (om.tree < 0 || om.tree >= conn.num_trees()) {
        throw CheckpointCorrupt("checkpoint: octant names tree " + std::to_string(om.tree) +
                                " outside the connectivity");
      }
      forest::Octant<Dim> o;
      o.x = om.x;
      o.y = om.y;
      if constexpr (Dim == 3) o.z = om.z;
      o.level = static_cast<std::int8_t>(om.level);
      trees[static_cast<std::size_t>(om.tree)].push_back(o);
    }
  }

  Restored<Dim> out{forest::Forest<Dim>::from_local_leaves(comm, &conn, std::move(trees)),
                    {},
                    m.step,
                    m.bytes_read};

  int total_per_oct = 0;
  for (const auto& [name, w] : m.fields) total_per_oct += w;
  if (total_per_oct == 0) {
    out.forest.partition();
    return out;
  }

  // Interleave all fields per octant so one partition_payload call carries
  // every field with the octants (a second call would move nothing: the
  // partition is already canonical after the first).
  const std::size_t n0 = static_cast<std::size_t>(comm.rank() == 0 ? img.octants.size() : 0);
  std::vector<double> payload(n0 * static_cast<std::size_t>(total_per_oct));
  if (comm.rank() == 0) {
    std::size_t off = 0;
    for (const NamedField& f : img.fields) {
      const auto w = static_cast<std::size_t>(f.per_oct);
      for (std::size_t i = 0; i < n0; ++i) {
        std::copy_n(f.data.begin() + static_cast<std::ptrdiff_t>(i * w), w,
                    payload.begin() +
                        static_cast<std::ptrdiff_t>(i * static_cast<std::size_t>(total_per_oct) +
                                                    off));
      }
      off += w;
    }
  }
  out.forest.partition_payload(nullptr, total_per_oct, payload);

  const auto n_local = static_cast<std::size_t>(out.forest.num_local());
  std::size_t off = 0;
  for (const auto& [name, w] : m.fields) {
    NamedField f;
    f.name = name;
    f.per_oct = w;
    f.data.resize(n_local * static_cast<std::size_t>(w));
    for (std::size_t i = 0; i < n_local; ++i) {
      std::copy_n(payload.begin() +
                      static_cast<std::ptrdiff_t>(i * static_cast<std::size_t>(total_per_oct) +
                                                  off),
                  static_cast<std::size_t>(w),
                  f.data.begin() + static_cast<std::ptrdiff_t>(i * static_cast<std::size_t>(w)));
    }
    off += static_cast<std::size_t>(w);
    out.fields.push_back(std::move(f));
  }
  return out;
}

std::uint64_t parse_seq(const fs::path& p) {
  const std::string stem = p.stem().string();  // "ckpt-<seq>"
  return std::stoull(stem.substr(5));
}

}  // namespace

template <int Dim>
std::uint64_t connectivity_id(const forest::Connectivity<Dim>& conn) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(Dim));
  mix(static_cast<std::uint64_t>(conn.num_trees()));
  for (const auto& tv : conn.tree_to_vertex()) {
    for (const int v : tv) mix(static_cast<std::uint64_t>(v));
  }
  for (const auto& vc : conn.vertex_coords()) {
    for (const double c : vc) mix(std::bit_cast<std::uint64_t>(c));
  }
  for (int t = 0; t < conn.num_trees(); ++t) {
    for (int f = 0; f < 2 * Dim; ++f) {
      const auto& fc = conn.face_connection(t, f);
      mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(fc.tree)));
      mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(fc.face)));
      for (int a = 0; a < 3; ++a) {
        mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(fc.xform.perm[a])));
        mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(fc.xform.sign[a])));
        mix(static_cast<std::uint64_t>(fc.xform.off[a]));
      }
    }
  }
  return h;
}

template <int Dim>
void write_checkpoint(const forest::Forest<Dim>& f, std::uint64_t conn_id, std::uint64_t step,
                      const std::vector<NamedField>& fields, const std::string& path) {
  par::Comm& comm = f.comm();
  const auto n_local = static_cast<std::size_t>(f.num_local());
  for (const NamedField& fld : fields) {
    if (fld.name.empty() || fld.name == "ranges" || fld.name == "octants" ||
        fld.name.size() > max_section_name) {
      throw std::runtime_error("write_checkpoint: bad field name '" + fld.name + "'");
    }
    if (fld.per_oct <= 0 || fld.data.size() != n_local * static_cast<std::size_t>(fld.per_oct)) {
      throw std::runtime_error("write_checkpoint: field '" + fld.name +
                               "' size does not match the local forest");
    }
  }

  // Gather the global SFC sequence and every field (rank order = SFC order).
  std::vector<forest::OctMsg> local;
  local.reserve(n_local);
  f.for_each_local([&local](int t, const forest::Octant<Dim>& o) {
    local.push_back(forest::OctMsg{t, o.x, o.y, Dim == 3 ? o.z : 0, o.level});
  });
  // The field vectors are rank-owned while the snapshot is gathered: every
  // byte must travel through the allgatherv, never via direct peer reads.
  std::vector<par::check::RegionGuard> field_guards;
  if (par::check::enabled(comm)) {
    field_guards.reserve(fields.size());
    for (const NamedField& fld : fields) {
      field_guards.emplace_back(comm, fld.data.data(), fld.data.size() * sizeof(double),
                                "checkpoint field");
    }
  }
  const auto oct_parts = comm.allgatherv(local);
  std::vector<std::vector<std::vector<double>>> field_parts;
  field_parts.reserve(fields.size());
  for (const NamedField& fld : fields) field_parts.push_back(comm.allgatherv(fld.data));

  if (comm.rank() == 0) {
    std::vector<forest::OctMsg> octants;
    for (const auto& part : oct_parts) octants.insert(octants.end(), part.begin(), part.end());
    std::vector<std::uint64_t> counts;
    for (const std::int64_t c : f.global_counts()) counts.push_back(static_cast<std::uint64_t>(c));

    Header h{};
    std::memcpy(h.magic, magic_bytes, sizeof(magic_bytes));
    h.version = checkpoint_format_version;
    h.dim = Dim;
    h.writer_ranks = static_cast<std::uint32_t>(comm.size());
    h.num_trees = static_cast<std::uint32_t>(f.num_trees());
    h.conn_id = conn_id;
    h.num_octants = octants.size();
    h.step = step;
    h.num_sections = static_cast<std::uint32_t>(2 + fields.size());
    h.header_crc = crc32c(&h, header_crc_span);

    std::vector<std::vector<double>> field_data;
    for (const auto& parts : field_parts) {
      std::vector<double> all;
      for (const auto& part : parts) all.insert(all.end(), part.begin(), part.end());
      field_data.push_back(std::move(all));
    }

    std::vector<SectionDesc> descs;
    std::uint64_t offset = sizeof(Header) + h.num_sections * sizeof(SectionDesc);
    const auto add = [&](const std::string& name, const void* data, std::uint64_t nbytes,
                         std::uint32_t aux) {
      descs.push_back(make_desc(name, offset, data, nbytes, aux));
      offset += nbytes;
    };
    add("ranges", counts.data(), counts.size() * sizeof(std::uint64_t), 0);
    add("octants", octants.data(), octants.size() * sizeof(forest::OctMsg), 0);
    for (std::size_t i = 0; i < fields.size(); ++i) {
      add(fields[i].name, field_data[i].data(), field_data[i].size() * sizeof(double),
          static_cast<std::uint32_t>(fields[i].per_oct));
    }

    publish_verified(
        path, step, comm.inject_config(),
        [&](io::CheckedFile& fp) {
          fp.write(&h, sizeof(h));
          fp.write(descs.data(), descs.size() * sizeof(SectionDesc));
          fp.write(counts.data(), counts.size() * sizeof(std::uint64_t));
          fp.write(octants.data(), octants.size() * sizeof(forest::OctMsg));
          for (const auto& fd : field_data) fp.write(fd.data(), fd.size() * sizeof(double));
        },
        [&](const std::string& tmp) { load_image(tmp, Dim, conn_id, f.num_trees()); });
  }
  comm.barrier();  // checkpoint completion is a collective postcondition
}

template <int Dim>
Restored<Dim> restore_checkpoint(par::Comm& comm, const forest::Connectivity<Dim>& conn,
                                 std::uint64_t conn_id, const std::string& path) {
  Image img;
  if (comm.rank() == 0) img = load_image(path, Dim, conn_id, conn.num_trees());
  return distribute<Dim>(comm, conn, std::move(img));
}

CheckpointRing::CheckpointRing(std::string dir, int keep) : dir_(std::move(dir)), keep_(keep) {
  if (keep_ < 1) throw std::runtime_error("CheckpointRing: keep must be >= 1");
  fs::create_directories(dir_);
}

std::vector<std::string> CheckpointRing::entries() const {
  std::vector<fs::path> found;
  for (const auto& e : fs::directory_iterator(dir_)) {
    const fs::path& p = e.path();
    if ((p.extension() == ".esnap" || p.extension() == ".edelta") &&
        p.stem().string().rfind("ckpt-", 0) == 0) {
      found.push_back(p);
    }
  }
  std::sort(found.begin(), found.end(),
            [](const fs::path& a, const fs::path& b) { return parse_seq(a) < parse_seq(b); });
  std::vector<std::string> out;
  out.reserve(found.size());
  for (const auto& p : found) out.push_back(p.string());
  return out;
}

bool CheckpointRing::is_delta(const std::string& path) {
  return fs::path(path).extension() == ".edelta";
}

std::string CheckpointRing::newest() const {
  const auto all = entries();
  return all.empty() ? std::string() : all.back();
}

std::string CheckpointRing::next_path() const {
  const auto all = entries();
  const std::uint64_t seq = all.empty() ? 0 : parse_seq(fs::path(all.back())) + 1;
  char name[32];
  std::snprintf(name, sizeof(name), "ckpt-%08llu.esnap", static_cast<unsigned long long>(seq));
  return (fs::path(dir_) / name).string();
}

std::string CheckpointRing::next_delta_path() const {
  const auto all = entries();
  const std::uint64_t seq = all.empty() ? 0 : parse_seq(fs::path(all.back())) + 1;
  char name[32];
  std::snprintf(name, sizeof(name), "ckpt-%08llu.edelta", static_cast<unsigned long long>(seq));
  return (fs::path(dir_) / name).string();
}

void CheckpointRing::quarantine_newest() {
  const std::string p = newest();
  if (p.empty()) return;
  fs::rename(p, p + ".bad");
}

void CheckpointRing::prune() {
  const auto all = entries();
  // The newest full snapshot anchors the live delta chain: neither it nor
  // anything newer may be pruned, or restore_latest_chain loses its base.
  std::size_t protect = all.size();
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (!is_delta(all[i])) protect = i;
  }
  std::size_t first = 0;
  while (static_cast<int>(all.size() - first) > keep_ && first < protect) {
    fs::remove(all[first]);
    ++first;
  }
}

template <int Dim>
void write_checkpoint_ring(const forest::Forest<Dim>& f, std::uint64_t conn_id,
                           std::uint64_t step, const std::vector<NamedField>& fields,
                           CheckpointRing& ring) {
  par::Comm& comm = f.comm();
  const std::string path = comm.rank() == 0 ? ring.next_path() : std::string();
  write_checkpoint(f, conn_id, step, fields, path);
  if (comm.rank() == 0) ring.prune();
}

bool ring_probe(par::Comm& comm, const CheckpointRing& ring) {
  int has = 0;
  if (comm.rank() == 0) has = ring.entries().empty() ? 0 : 1;
  return comm.bcast(has, 0) != 0;
}

template <int Dim>
Restored<Dim> restore_latest(par::Comm& comm, const forest::Connectivity<Dim>& conn,
                             std::uint64_t conn_id, CheckpointRing& ring, int* fallbacks) {
  // Rank 0 walks the ring newest-to-oldest, quarantining corrupt entries,
  // then broadcasts whether (and with how many fallbacks) a snapshot loaded.
  Image img;
  std::uint64_t status = 1;  // 0 = ok, 1 = empty ring, 2 = all entries corrupt
  std::string err;
  int falls = 0;
  if (comm.rank() == 0) {
    const auto paths = ring.entries();
    if (paths.empty()) {
      err = "checkpoint ring empty: " + ring.dir();
    } else {
      status = 2;
      for (auto it = paths.rbegin(); it != paths.rend(); ++it) {
        try {
          img = load_image(*it, Dim, conn_id, conn.num_trees());
          status = 0;
          break;
        } catch (const CheckpointCorrupt& e) {
          // This entry is the newest remaining (later ones were quarantined
          // in earlier iterations), so quarantine-newest hits exactly it.
          err = e.what();
          ring.quarantine_newest();
          ++falls;
        }
      }
    }
  }
  status = comm.bcast(status, 0);
  falls = comm.bcast(falls, 0);
  if (fallbacks != nullptr) *fallbacks = falls;
  if (status == 1) {
    throw std::runtime_error(comm.rank() == 0 ? err : "checkpoint ring empty");
  }
  if (status == 2) {
    throw CheckpointCorrupt(comm.rank() == 0 ? err : "no ring entry passed CRC validation");
  }
  return distribute<Dim>(comm, conn, std::move(img));
}

namespace {

/// Replay one validated delta on top of the in-memory base image: drop every
/// base octant covered by a delta region, then merge the delta's leaves (and
/// their field values) back in by (tree, SFC) order. The writer guarantees a
/// delta's leaves are exactly the current leaves inside its regions, so the
/// merge result is the full leaf sequence at the delta's step.
template <int Dim>
void apply_delta(Image& img, const DeltaImage& d, int num_trees, const std::string& path) {
  using Oct = forest::Octant<Dim>;
  const auto to_oct = [](const forest::OctMsg& m) {
    Oct o;
    o.x = m.x;
    o.y = m.y;
    if constexpr (Dim == 3) o.z = m.z;
    o.level = static_cast<std::int8_t>(m.level);
    return o;
  };
  std::vector<std::vector<Oct>> reg(static_cast<std::size_t>(num_trees));
  for (const forest::OctMsg& m : d.regions) {
    if (m.tree < 0 || m.tree >= num_trees) corrupt(path, "delta region outside the connectivity");
    reg[static_cast<std::size_t>(m.tree)].push_back(to_oct(m));
  }
  for (auto& v : reg) std::sort(v.begin(), v.end());
  const auto covered = [&](const forest::OctMsg& m) {
    if (m.tree < 0 || m.tree >= num_trees) {
      corrupt(path, "base octant names a tree outside the connectivity");
    }
    const auto& v = reg[static_cast<std::size_t>(m.tree)];
    const Oct o = to_oct(m);
    const auto it = std::upper_bound(v.begin(), v.end(), o);
    if (it != v.end() && o.contains(*it) && o.level < it->level) {
      // A base leaf strictly coarser than a recorded region means the
      // writer's change tracking missed a refinement under it.
      corrupt(path, "delta region finer than a base leaf (incomplete tracking)");
    }
    return it != v.begin() && std::prev(it)->contains(o);
  };

  if (img.fields.size() != d.fields.size()) {
    corrupt(path, "delta field set does not match the base snapshot");
  }
  for (std::size_t i = 0; i < d.fields.size(); ++i) {
    if (img.fields[i].name != d.fields[i].name ||
        img.fields[i].per_oct != d.fields[i].per_oct) {
      corrupt(path, "delta field '" + d.fields[i].name + "' does not match the base snapshot");
    }
  }

  std::vector<forest::OctMsg> merged;
  merged.reserve(img.octants.size() + d.octants.size());
  std::vector<std::vector<double>> mdata(img.fields.size());
  const auto less_msg = [&](const forest::OctMsg& a, const forest::OctMsg& b) {
    if (a.tree != b.tree) return a.tree < b.tree;
    return to_oct(a) < to_oct(b);
  };
  const auto take = [&](const std::vector<forest::OctMsg>& oct,
                        const std::vector<NamedField>& flds, std::size_t i) {
    merged.push_back(oct[i]);
    for (std::size_t fi = 0; fi < flds.size(); ++fi) {
      const auto w = static_cast<std::size_t>(flds[fi].per_oct);
      mdata[fi].insert(mdata[fi].end(),
                       flds[fi].data.begin() + static_cast<std::ptrdiff_t>(i * w),
                       flds[fi].data.begin() + static_cast<std::ptrdiff_t>((i + 1) * w));
    }
  };
  std::size_t ib = 0, id = 0;
  while (ib < img.octants.size() || id < d.octants.size()) {
    if (ib < img.octants.size() && covered(img.octants[ib])) {
      ++ib;  // replaced by the delta's view of this region
      continue;
    }
    const bool take_delta = id < d.octants.size() &&
                            (ib >= img.octants.size() ||
                             less_msg(d.octants[id], img.octants[ib]));
    if (take_delta) {
      take(d.octants, d.fields, id);
      ++id;
    } else {
      take(img.octants, img.fields, ib);
      ++ib;
    }
  }
  img.octants = std::move(merged);
  for (std::size_t fi = 0; fi < img.fields.size(); ++fi) {
    img.fields[fi].data = std::move(mdata[fi]);
  }
}

}  // namespace

template <int Dim>
void write_delta_checkpoint_ring(const forest::Forest<Dim>& f, std::uint64_t conn_id,
                                 std::uint64_t step, const std::vector<NamedField>& fields,
                                 forest::DeltaSet<Dim>& delta, CheckpointRing& ring) {
  using Oct = forest::Octant<Dim>;
  par::Comm& comm = f.comm();
  const auto n_local = static_cast<std::size_t>(f.num_local());
  for (const NamedField& fld : fields) {
    if (fld.name.empty() || fld.name == "dmeta" || fld.name == "dregions" ||
        fld.name == "doctants" || fld.name == "ranges" || fld.name == "octants" ||
        fld.name.size() > max_section_name) {
      throw std::runtime_error("write_delta_checkpoint_ring: bad field name '" + fld.name + "'");
    }
    if (fld.per_oct <= 0 || fld.data.size() != n_local * static_cast<std::size_t>(fld.per_oct)) {
      throw std::runtime_error("write_delta_checkpoint_ring: field '" + fld.name +
                               "' size does not match the local forest");
    }
  }

  // Rank 0 looks up the chain anchor (the newest full snapshot) and the
  // predecessor link; the go/no-go decision is collective so every rank
  // takes the same branch.
  std::array<std::uint64_t, 4> link{0, 0, 0, 0};  // has_anchor, base, prev, prev_crc
  if (comm.rank() == 0) {
    const auto paths = ring.entries();
    std::string anchor;
    for (const auto& p : paths) {
      if (!CheckpointRing::is_delta(p)) anchor = p;
    }
    if (!anchor.empty()) {
      std::uint32_t crc = 0;
      if (peek_header_crc(paths.back(), crc)) {
        link = {1, parse_seq(fs::path(anchor)), parse_seq(fs::path(paths.back())), crc};
      }
    }
  }
  link = comm.bcast(link, 0);
  const bool want_full = link[0] == 0 || delta.overflow || !forest::incremental_enabled();
  if (comm.allreduce(static_cast<int>(want_full), par::ReduceOp::logical_or) != 0) {
    write_checkpoint_ring<Dim>(f, conn_id, step, fields, ring);
    return;
  }

  forest::DeltaSet<Dim> global = delta.replicated(comm);
  if (global.regions.size() != static_cast<std::size_t>(f.num_trees())) {
    throw std::runtime_error("write_delta_checkpoint_ring: delta tree count mismatch");
  }

  // Local leaves inside the replicated regions, in local SFC order — the
  // rank concatenation below is therefore the global SFC order — plus the
  // field values on exactly those leaves.
  std::vector<forest::OctMsg> doct;
  std::vector<std::vector<double>> dvals(fields.size());
  std::size_t tree_base = 0;
  for (int t = 0; t < f.num_trees(); ++t) {
    const std::vector<Oct>& leaves = f.tree(t);
    for (const Oct& r : global.regions[static_cast<std::size_t>(t)]) {
      const auto [lo, hi] = forest::overlapping_range<Dim>(leaves, r);
      for (std::size_t i = lo; i < hi; ++i) {
        const Oct& o = leaves[i];
        if (!r.contains(o)) {
          // A leaf coarser than a region it overlaps means change tracking
          // missed a coarsening: the delta cannot represent this step.
          throw std::runtime_error(
              "write_delta_checkpoint_ring: leaf coarser than its delta region");
        }
        doct.push_back(forest::OctMsg{t, o.x, o.y, Dim == 3 ? o.z : 0, o.level});
        const std::size_t li = tree_base + i;
        for (std::size_t fi = 0; fi < fields.size(); ++fi) {
          const auto w = static_cast<std::size_t>(fields[fi].per_oct);
          dvals[fi].insert(dvals[fi].end(),
                           fields[fi].data.begin() + static_cast<std::ptrdiff_t>(li * w),
                           fields[fi].data.begin() + static_cast<std::ptrdiff_t>((li + 1) * w));
        }
      }
    }
    tree_base += leaves.size();
  }

  const auto oct_parts = comm.allgatherv(doct);
  std::vector<std::vector<std::vector<double>>> field_parts;
  field_parts.reserve(fields.size());
  for (const auto& dv : dvals) field_parts.push_back(comm.allgatherv(dv));

  if (comm.rank() == 0) {
    std::vector<forest::OctMsg> octants;
    for (const auto& part : oct_parts) octants.insert(octants.end(), part.begin(), part.end());
    std::vector<forest::OctMsg> regions;
    for (int t = 0; t < f.num_trees(); ++t) {
      for (const Oct& r : global.regions[static_cast<std::size_t>(t)]) {
        regions.push_back(forest::OctMsg{t, r.x, r.y, Dim == 3 ? r.z : 0, r.level});
      }
    }
    const std::uint64_t dmeta[3] = {link[1], link[2], link[3]};

    Header h{};
    std::memcpy(h.magic, magic_bytes, sizeof(magic_bytes));
    h.version = checkpoint_format_version;
    h.dim = Dim;
    h.writer_ranks = static_cast<std::uint32_t>(comm.size());
    h.num_trees = static_cast<std::uint32_t>(f.num_trees());
    h.conn_id = conn_id;
    h.num_octants = octants.size();
    h.step = step;
    h.num_sections = static_cast<std::uint32_t>(3 + fields.size());
    h.header_crc = crc32c(&h, header_crc_span);

    std::vector<std::vector<double>> field_data;
    for (const auto& parts : field_parts) {
      std::vector<double> all;
      for (const auto& part : parts) all.insert(all.end(), part.begin(), part.end());
      field_data.push_back(std::move(all));
    }

    std::vector<SectionDesc> descs;
    std::uint64_t offset = sizeof(Header) + h.num_sections * sizeof(SectionDesc);
    const auto add = [&](const std::string& name, const void* data, std::uint64_t nbytes,
                         std::uint32_t aux) {
      descs.push_back(make_desc(name, offset, data, nbytes, aux));
      offset += nbytes;
    };
    add("dmeta", dmeta, sizeof(dmeta), 0);
    add("dregions", regions.data(), regions.size() * sizeof(forest::OctMsg), 0);
    add("doctants", octants.data(), octants.size() * sizeof(forest::OctMsg), 0);
    for (std::size_t i = 0; i < fields.size(); ++i) {
      add(fields[i].name, field_data[i].data(), field_data[i].size() * sizeof(double),
          static_cast<std::uint32_t>(fields[i].per_oct));
    }

    const std::string path = ring.next_delta_path();
    publish_verified(
        path, step, comm.inject_config(),
        [&](io::CheckedFile& fp) {
          fp.write(&h, sizeof(h));
          fp.write(descs.data(), descs.size() * sizeof(SectionDesc));
          fp.write(dmeta, sizeof(dmeta));
          fp.write(regions.data(), regions.size() * sizeof(forest::OctMsg));
          fp.write(octants.data(), octants.size() * sizeof(forest::OctMsg));
          for (const auto& fd : field_data) fp.write(fd.data(), fd.size() * sizeof(double));
        },
        [&](const std::string& tmp) { load_delta_image(tmp, Dim, conn_id, f.num_trees()); });
    forest::op_stats().ckpt_delta_bytes += static_cast<std::int64_t>(fs::file_size(path));
    ring.prune();
  }
  comm.barrier();  // checkpoint completion is a collective postcondition
}

template <int Dim>
Restored<Dim> restore_latest_chain(par::Comm& comm, const forest::Connectivity<Dim>& conn,
                                   std::uint64_t conn_id, CheckpointRing& ring, int* fallbacks) {
  // Rank 0 finds the newest full snapshot that validates (quarantining
  // corrupt ones), then replays the delta chain above it in sequence order.
  // The chain stops at the first corrupt delta (quarantined) or broken
  // (base, prev, prev-CRC) link — later deltas are orphaned and the state
  // restored is the longest valid prefix.
  Image img;
  std::uint64_t status = 1;  // 0 = ok, 1 = empty ring, 2 = no valid full snapshot
  std::string err;
  int falls = 0;
  if (comm.rank() == 0) {
    for (;;) {
      const auto paths = ring.entries();
      std::string anchor;
      for (const auto& p : paths) {
        if (!CheckpointRing::is_delta(p)) anchor = p;
      }
      if (anchor.empty()) {
        if (paths.empty() && err.empty()) {
          err = "checkpoint ring empty: " + ring.dir();
        } else {
          status = 2;
          if (err.empty()) err = "no full snapshot in ring: " + ring.dir();
        }
        break;
      }
      try {
        img = load_image(anchor, Dim, conn_id, conn.num_trees());
      } catch (const CheckpointCorrupt& e) {
        err = e.what();
        fs::rename(anchor, anchor + ".bad");
        ++falls;
        continue;  // fall back to the next-older full snapshot
      }
      status = 0;
      const std::uint64_t anchor_seq = parse_seq(fs::path(anchor));
      std::uint64_t prev_seq = anchor_seq;
      std::uint32_t prev_crc = img.header_crc;
      for (const auto& p : paths) {
        if (!CheckpointRing::is_delta(p)) continue;
        const std::uint64_t seq = parse_seq(fs::path(p));
        if (seq < anchor_seq) continue;  // leftovers of an older chain
        try {
          const DeltaImage d = load_delta_image(p, Dim, conn_id, conn.num_trees());
          if (d.base_seq != anchor_seq || d.prev_seq != prev_seq || d.prev_crc != prev_crc) {
            break;  // orphaned tail of a different chain: keep the prefix
          }
          apply_delta<Dim>(img, d, conn.num_trees(), p);
          img.step = d.step;
          img.bytes_read += d.bytes_read;
          prev_seq = seq;
          prev_crc = d.header_crc;
        } catch (const CheckpointCorrupt&) {
          fs::rename(p, p + ".bad");
          ++falls;
          break;  // everything after the corrupt link is unreachable
        }
      }
      break;
    }
  }
  status = comm.bcast(status, 0);
  falls = comm.bcast(falls, 0);
  if (fallbacks != nullptr) *fallbacks = falls;
  if (status == 1) {
    throw std::runtime_error(comm.rank() == 0 ? err : "checkpoint ring empty");
  }
  if (status == 2) {
    throw CheckpointCorrupt(comm.rank() == 0 ? err : "no full snapshot passed CRC validation");
  }
  return distribute<Dim>(comm, conn, std::move(img));
}

const char* corrupt_kind_name(CorruptKind k) {
  switch (k) {
    case CorruptKind::byte_flip: return "byte_flip";
    case CorruptKind::truncate_tail: return "truncate_tail";
    case CorruptKind::torn_write: return "torn_write";
  }
  return "?";
}

void corrupt_checkpoint(const std::string& path, CorruptKind kind, std::uint64_t seed) {
  long fsize = 0;
  Header h{};
  {
    io::CheckedFile fp(path, "rb");
    fsize = fp.size();
    fp.read_exact(&h, sizeof(h));
  }
  const long data_start =
      static_cast<long>(sizeof(Header) + h.num_sections * sizeof(SectionDesc));
  if (fsize <= data_start) {
    throw std::runtime_error("corrupt_checkpoint: no data region in " + path);
  }
  const long data_len = fsize - data_start;
  const std::uint64_t hash = par::detail::mix64(seed ^ 0xc0440001ULL);

  switch (kind) {
    case CorruptKind::byte_flip: {
      const long off = data_start + static_cast<long>(hash % static_cast<std::uint64_t>(data_len));
      const auto bit = static_cast<unsigned char>(1u << ((hash >> 37) % 8));
      io::CheckedFile fp(path, "r+b");
      unsigned char byte = 0;
      fp.seek(off);
      fp.read_exact(&byte, 1);
      byte = static_cast<unsigned char>(byte ^ bit);
      fp.seek(off);
      fp.write(&byte, 1);
      fp.close();
      break;
    }
    case CorruptKind::truncate_tail: {
      // Cut into the data region so some section must extend past EOF.
      const long drop = 1 + static_cast<long>(hash % static_cast<std::uint64_t>(data_len));
      fs::resize_file(path, static_cast<std::uint64_t>(fsize - drop));
      break;
    }
    case CorruptKind::torn_write: {
      // XOR a hashed-length tail run with a nonzero mask: same file size,
      // garbled final section — the torn-rewrite signature.
      const long len =
          1 + static_cast<long>(hash % static_cast<std::uint64_t>(std::min<long>(data_len, 64)));
      const auto mask = static_cast<unsigned char>((hash >> 29) | 1u);
      std::vector<unsigned char> tail(static_cast<std::size_t>(len));
      io::CheckedFile fp(path, "r+b");
      fp.seek(fsize - len);
      fp.read_exact(tail.data(), tail.size());
      for (unsigned char& b : tail) b = static_cast<unsigned char>(b ^ mask);
      fp.seek(fsize - len);
      fp.write(tail.data(), tail.size());
      fp.close();
      break;
    }
  }
}

void corrupt_checkpoint_byte(const std::string& path, std::uint64_t seed) {
  corrupt_checkpoint(path, CorruptKind::byte_flip, seed);
}

DiskFaultStats disk_fault_stats() {
  DiskFaultStats s;
  s.commits = g_commits.load();
  s.write_retries = g_write_retries.load();
  s.eio_injected = g_eio.load();
  s.torn_injected = g_torn.load();
  s.trunc_injected = g_trunc.load();
  s.verify_failures = g_verify_failures.load();
  return s;
}

void reset_disk_fault_stats() {
  g_commits = 0;
  g_write_retries = 0;
  g_eio = 0;
  g_torn = 0;
  g_trunc = 0;
  g_verify_failures = 0;
}

template std::uint64_t connectivity_id<2>(const forest::Connectivity<2>&);
template std::uint64_t connectivity_id<3>(const forest::Connectivity<3>&);
template void write_checkpoint<2>(const forest::Forest<2>&, std::uint64_t, std::uint64_t,
                                  const std::vector<NamedField>&, const std::string&);
template void write_checkpoint<3>(const forest::Forest<3>&, std::uint64_t, std::uint64_t,
                                  const std::vector<NamedField>&, const std::string&);
template Restored<2> restore_checkpoint<2>(par::Comm&, const forest::Connectivity<2>&,
                                           std::uint64_t, const std::string&);
template Restored<3> restore_checkpoint<3>(par::Comm&, const forest::Connectivity<3>&,
                                           std::uint64_t, const std::string&);
template void write_checkpoint_ring<2>(const forest::Forest<2>&, std::uint64_t, std::uint64_t,
                                       const std::vector<NamedField>&, CheckpointRing&);
template void write_checkpoint_ring<3>(const forest::Forest<3>&, std::uint64_t, std::uint64_t,
                                       const std::vector<NamedField>&, CheckpointRing&);
template Restored<2> restore_latest<2>(par::Comm&, const forest::Connectivity<2>&, std::uint64_t,
                                       CheckpointRing&, int*);
template Restored<3> restore_latest<3>(par::Comm&, const forest::Connectivity<3>&, std::uint64_t,
                                       CheckpointRing&, int*);
template void write_delta_checkpoint_ring<2>(const forest::Forest<2>&, std::uint64_t,
                                             std::uint64_t, const std::vector<NamedField>&,
                                             forest::DeltaSet<2>&, CheckpointRing&);
template void write_delta_checkpoint_ring<3>(const forest::Forest<3>&, std::uint64_t,
                                             std::uint64_t, const std::vector<NamedField>&,
                                             forest::DeltaSet<3>&, CheckpointRing&);
template Restored<2> restore_latest_chain<2>(par::Comm&, const forest::Connectivity<2>&,
                                             std::uint64_t, CheckpointRing&, int*);
template Restored<3> restore_latest_chain<3>(par::Comm&, const forest::Connectivity<3>&,
                                             std::uint64_t, CheckpointRing&, int*);

}  // namespace esamr::resil
