#include "resil/supervisor.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "par/inject.h"
#include "resil/checkpoint.h"

namespace esamr::resil {

std::string RecoveryStats::summary() const {
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "attempts=%d failures=%d corrupt_msgs=%d bytes_reread=%lld steps_replayed=%llu "
                "backoff_s=%.3f jitter=[%.4f, %.4f]",
                attempts, failures, corrupt_msgs, static_cast<long long>(bytes_reread),
                static_cast<unsigned long long>(steps_replayed), backoff_s, backoff_min_s,
                backoff_max_s);
  std::string out = buf;
  for (const std::string& f : failure_log) out += "\n  fault: " + f;
  return out;
}

namespace {

enum class Fault { rank_failure, timeout, corrupt_msg, corrupt_ckpt };

}  // namespace

RecoveryStats supervise(int nranks, par::RunOptions opts, const SupervisorOptions& sopts,
                        CheckpointRing* ring, const SupervisedBody& body) {
  RecoveryStats stats;
  double backoff = sopts.backoff_initial_s;
  for (int attempt = 0;; ++attempt) {
    RecoveryContext ctx(attempt);

    // Account a caught fault; returns false when retries are exhausted (the
    // caller then rethrows the original exception via bare `throw`).
    const auto on_fault = [&](Fault fault, const char* what) {
      ++stats.failures;
      if (fault == Fault::corrupt_msg) ++stats.corrupt_msgs;
      stats.bytes_reread += ctx.bytes_reread();
      stats.steps_replayed += ctx.steps_done();  // this attempt's work is discarded
      stats.failure_log.emplace_back(what);
      if (attempt >= sopts.max_retries) return false;
      if (fault == Fault::rank_failure && sopts.clear_kill_on_retry) {
        opts.inject.kill_after_ops = 0;  // one-shot node failure model
      }
      if (fault == Fault::corrupt_msg && sopts.clear_corrupt_on_retry) {
        opts.inject.corrupt_msg_stride = 0;  // transient link fault model
      }
      if (fault == Fault::corrupt_ckpt && ring != nullptr) ring->quarantine_newest();
      if (backoff > 0.0) {
        // Seeded jitter: u in [-1, 1) from (inject seed, attempt), so the
        // sleep sequence is reproducible per seed yet decorrelated across
        // seeds. unit_hash is the same primitive the injectors use.
        const double u =
            2.0 * par::detail::unit_hash(opts.inject.seed ^ 0xbac0ffULL,
                                         static_cast<std::uint64_t>(attempt), 0) -
            1.0;
        const double sleep_s = backoff * (1.0 + sopts.backoff_jitter * u);
        std::this_thread::sleep_for(std::chrono::duration<double>(sleep_s));
        stats.backoff_s += sleep_s;
        if (stats.backoff_min_s == 0.0 || sleep_s < stats.backoff_min_s) {
          stats.backoff_min_s = sleep_s;
        }
        if (sleep_s > stats.backoff_max_s) stats.backoff_max_s = sleep_s;
        backoff = std::min(backoff * sopts.backoff_factor, sopts.backoff_max_s);
      }
      return true;
    };

    ++stats.attempts;
    try {
      par::run(nranks, opts, [&](par::Comm& c) { body(c, ctx); });
      stats.bytes_reread += ctx.bytes_reread();
      return stats;
    } catch (const par::RankFailure& e) {
      if (!on_fault(Fault::rank_failure, e.what())) throw;
    } catch (const par::TimeoutError& e) {
      if (!on_fault(Fault::timeout, e.what())) throw;
    } catch (const par::CorruptMessage& e) {
      if (!on_fault(Fault::corrupt_msg, e.what())) throw;
    } catch (const par::check::CheckError& e) {
      // The dynamic checker diagnoses a stuck world long before the timeout
      // fires; treat its deadlock verdict as the same fault class. Races and
      // collective mismatches are program bugs, not faults — propagate them.
      if (e.kind() != par::check::Violation::deadlock) throw;
      if (!on_fault(Fault::timeout, e.what())) throw;
    } catch (const CheckpointCorrupt& e) {
      if (!on_fault(Fault::corrupt_ckpt, e.what())) throw;
    }
    // Anything else propagates out of the try untouched: a bug, not a fault.
  }
}

}  // namespace esamr::resil
