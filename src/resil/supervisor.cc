#include "resil/supervisor.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "resil/checkpoint.h"

namespace esamr::resil {

std::string RecoveryStats::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "attempts=%d failures=%d bytes_reread=%lld steps_replayed=%llu backoff_s=%.3f",
                attempts, failures, static_cast<long long>(bytes_reread),
                static_cast<unsigned long long>(steps_replayed), backoff_s);
  std::string out = buf;
  for (const std::string& f : failure_log) out += "\n  fault: " + f;
  return out;
}

namespace {

enum class Fault { rank_failure, timeout, corrupt };

}  // namespace

RecoveryStats supervise(int nranks, par::RunOptions opts, const SupervisorOptions& sopts,
                        CheckpointRing* ring, const SupervisedBody& body) {
  RecoveryStats stats;
  double backoff = sopts.backoff_initial_s;
  for (int attempt = 0;; ++attempt) {
    RecoveryContext ctx(attempt);

    // Account a caught fault; returns false when retries are exhausted (the
    // caller then rethrows the original exception via bare `throw`).
    const auto on_fault = [&](Fault fault, const char* what) {
      ++stats.failures;
      stats.bytes_reread += ctx.bytes_reread();
      stats.steps_replayed += ctx.steps_done();  // this attempt's work is discarded
      stats.failure_log.emplace_back(what);
      if (attempt >= sopts.max_retries) return false;
      if (fault == Fault::rank_failure && sopts.clear_kill_on_retry) {
        opts.inject.kill_after_ops = 0;  // one-shot node failure model
      }
      if (fault == Fault::corrupt && ring != nullptr) ring->quarantine_newest();
      if (backoff > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
        stats.backoff_s += backoff;
        backoff = std::min(backoff * sopts.backoff_factor, sopts.backoff_max_s);
      }
      return true;
    };

    ++stats.attempts;
    try {
      par::run(nranks, opts, [&](par::Comm& c) { body(c, ctx); });
      stats.bytes_reread += ctx.bytes_reread();
      return stats;
    } catch (const par::RankFailure& e) {
      if (!on_fault(Fault::rank_failure, e.what())) throw;
    } catch (const par::TimeoutError& e) {
      if (!on_fault(Fault::timeout, e.what())) throw;
    } catch (const par::check::CheckError& e) {
      // The dynamic checker diagnoses a stuck world long before the timeout
      // fires; treat its deadlock verdict as the same fault class. Races and
      // collective mismatches are program bugs, not faults — propagate them.
      if (e.kind() != par::check::Violation::deadlock) throw;
      if (!on_fault(Fault::timeout, e.what())) throw;
    } catch (const CheckpointCorrupt& e) {
      if (!on_fault(Fault::corrupt, e.what())) throw;
    }
    // Anything else propagates out of the try untouched: a bug, not a fault.
  }
}

}  // namespace esamr::resil
