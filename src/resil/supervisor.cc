#include "resil/supervisor.h"

#include <cstdio>

#include "par/backoff.h"
#include "par/inject.h"
#include "par/stats.h"
#include "resil/checkpoint.h"

namespace esamr::resil {

const char* recovery_mode_name(RecoveryMode m) {
  switch (m) {
    case RecoveryMode::full_restart: return "full_restart";
    case RecoveryMode::shrink: return "shrink";
    case RecoveryMode::spare: return "spare";
  }
  return "?";
}

void RecoveryStats::merge(const RecoveryStats& o) {
  attempts += o.attempts;
  failures += o.failures;
  corrupt_msgs += o.corrupt_msgs;
  bytes_reread += o.bytes_reread;
  steps_replayed += o.steps_replayed;
  backoff_s += o.backoff_s;
  if (o.backoff_min_s > 0.0 && (backoff_min_s == 0.0 || o.backoff_min_s < backoff_min_s)) {
    backoff_min_s = o.backoff_min_s;
  }
  if (o.backoff_max_s > backoff_max_s) backoff_max_s = o.backoff_max_s;
  healed_link += o.healed_link;
  healed_spare += o.healed_spare;
  healed_shrink += o.healed_shrink;
  healed_restart += o.healed_restart;
  ranks_final = o.ranks_final;
  suspended = o.suspended;
  repairs += o.repairs;
  repair_s += o.repair_s;
  detect_s += o.detect_s;
  failure_log.insert(failure_log.end(), o.failure_log.begin(), o.failure_log.end());
  failures_dropped += o.failures_dropped;
}

std::string RecoveryStats::summary() const {
  char buf[288];
  std::snprintf(buf, sizeof(buf),
                "attempts=%d failures=%d corrupt_msgs=%d bytes_reread=%lld steps_replayed=%llu "
                "backoff_s=%.3f jitter=[%.4f, %.4f]",
                attempts, failures, corrupt_msgs, static_cast<long long>(bytes_reread),
                static_cast<unsigned long long>(steps_replayed), backoff_s, backoff_min_s,
                backoff_max_s);
  std::string out = buf;
  if (healed_link != 0 || healed_spare != 0 || healed_shrink != 0 || healed_restart != 0) {
    std::snprintf(buf, sizeof(buf),
                  "\nladder: link=%d spare=%d shrink=%d restart=%d ranks_final=%d",
                  healed_link, healed_spare, healed_shrink, healed_restart, ranks_final);
    out += buf;
  }
  if (repairs != 0) {
    std::snprintf(buf, sizeof(buf), "\nmttr=%.4f s over %d repair(s), detect_s=%.4f", mttr_s(),
                  repairs, detect_s);
    out += buf;
  }
  if (suspended) out += "\nsuspended (checkpoint committed, no budget consumed)";
  for (const std::string& f : failure_log) out += "\n  fault: " + f;
  if (failures_dropped > 0) {
    std::snprintf(buf, sizeof(buf), "\n  (+%d fault log line(s) dropped by the cap)",
                  failures_dropped);
    out += buf;
  }
  return out;
}

namespace {

enum class Fault { rank_failure, timeout, corrupt_msg, corrupt_ckpt };

}  // namespace

RecoveryStats supervise(int nranks, par::RunOptions opts, const SupervisorOptions& sopts,
                        CheckpointRing* ring, const SupervisedBody& body) {
  RecoveryStats stats;
  // Link-layer heals never surface as exceptions, so they are observed as a
  // counter delta across this supervised run — against a *scoped* counter
  // (par::ArqScope installed into the RunOptions), not the process-wide one,
  // so concurrent supervisors never read each other's heals. A caller-
  // provided scope is respected (and read the same delta-wise).
  par::ArqScope arq_local;
  if (opts.arq_scope == nullptr) opts.arq_scope = &arq_local;
  const std::int64_t arq_healed0 = opts.arq_scope->healed.load(std::memory_order_relaxed);
  const auto arq_healed_delta = [&] {
    return static_cast<int>(opts.arq_scope->healed.load(std::memory_order_relaxed) -
                            arq_healed0);
  };
  // The jittered-exponential restart schedule (one draw per caught fault) —
  // the same stream the pre-refactor inline formula produced, now drawn from
  // the shared seeded-backoff helper. backoff_salt decorrelates concurrent
  // supervisors that share an inject seed; the default salt of 0 mixes to 0,
  // keeping single-job schedules bit-identical.
  par::SeededBackoff backoff(
      par::BackoffPolicy{sopts.backoff_initial_s, sopts.backoff_factor, sopts.backoff_cap_s,
                         sopts.backoff_jitter},
      opts.inject.seed ^ 0xbac0ffULL ^ par::detail::mix64(sopts.backoff_salt));
  int world_size = nranks;
  int spares_left = sopts.policy.spares;
  double fault_wall = 0.0;  // wall time of the currently-unrepaired fault

  for (int attempt = 0;; ++attempt) {
    // A suspend requested while no attempt is in flight (e.g. during the
    // backoff sleep between retries, or before the first launch) yields here
    // instead of starting another attempt the scheduler no longer wants.
    if (sopts.suspend != nullptr && sopts.suspend->requested()) {
      stats.suspended = true;
      stats.ranks_final = world_size;
      stats.healed_link = arq_healed_delta();
      return stats;
    }
    RecoveryContext ctx(attempt);

    // Close the previous fault's repair interval at this attempt's first
    // successful restore (the world was computing again from that moment).
    const auto settle_mttr = [&] {
      const double restored = ctx.first_restore_wall();
      if (fault_wall > 0.0 && restored > fault_wall) {
        stats.repair_s += restored - fault_wall;
        ++stats.repairs;
        fault_wall = 0.0;
      }
    };

    // Account a caught fault; returns false when retries are exhausted (the
    // caller then rethrows the original exception via bare `throw`).
    // `victim` >= 0 carries a RankFailure's failed rank for the policy ladder.
    const auto on_fault = [&](Fault fault, const char* what, int victim = -1) {
      settle_mttr();
      fault_wall = par::wall_seconds();
      ++stats.failures;
      if (fault == Fault::corrupt_msg) ++stats.corrupt_msgs;
      stats.bytes_reread += ctx.bytes_reread();
      stats.steps_replayed += ctx.steps_done();  // this attempt's work is discarded
      if (static_cast<int>(stats.failure_log.size()) < sopts.failure_log_max) {
        stats.failure_log.emplace_back(what);
      } else {
        ++stats.failures_dropped;  // bounded log under sustained fault load
      }
      if (attempt >= sopts.max_retries) return false;
      if (fault == Fault::rank_failure) {
        // The repair ladder: substitute a spare (size unchanged), else re-form
        // a smaller world in place, else fall back to a full restart. In-place
        // repairs exempt the victim from further kill selection — the failed
        // node is gone; its deterministic kill must not re-fire.
        const RecoveryMode mode = sopts.policy.on_rank_failure;
        if (mode == RecoveryMode::spare && spares_left > 0) {
          --spares_left;
          opts.inject.kill_exempt.push_back(victim);
          ++stats.healed_spare;
        } else if (mode != RecoveryMode::full_restart && world_size > sopts.policy.min_ranks) {
          --world_size;
          opts.inject.kill_exempt.push_back(victim);
          ++stats.healed_shrink;
        } else {
          if (sopts.clear_kill_on_retry) {
            opts.inject.kill_after_ops = 0;  // one-shot node failure model
          }
          ++stats.healed_restart;
        }
      } else {
        ++stats.healed_restart;
      }
      if (fault == Fault::corrupt_msg && sopts.clear_corrupt_on_retry) {
        opts.inject.corrupt_msg_stride = 0;  // transient link fault model
      }
      if (fault == Fault::corrupt_ckpt && ring != nullptr) ring->quarantine_newest();
      const double sleep_s = backoff.sleep();
      if (sleep_s > 0.0) {
        stats.backoff_s += sleep_s;
        if (stats.backoff_min_s == 0.0 || sleep_s < stats.backoff_min_s) {
          stats.backoff_min_s = sleep_s;
        }
        if (sleep_s > stats.backoff_max_s) stats.backoff_max_s = sleep_s;
      }
      return true;
    };

    ++stats.attempts;
    try {
      par::run(world_size, opts, [&](par::Comm& c) { body(c, ctx); });
      settle_mttr();
      stats.bytes_reread += ctx.bytes_reread();
      stats.ranks_final = world_size;
      stats.healed_link = arq_healed_delta();
      return stats;
    } catch (const Suspended&) {
      // A cooperative checkpoint-and-suspend, not a fault: the body committed
      // a checkpoint and yielded the world. The steps this attempt completed
      // are preserved by that checkpoint (nothing is replayed), no retry
      // budget is consumed, and the caller resumes with a later supervise
      // call over the same ring — elastically, at any world size.
      settle_mttr();
      stats.bytes_reread += ctx.bytes_reread();
      stats.ranks_final = world_size;
      stats.suspended = true;
      stats.healed_link = arq_healed_delta();
      return stats;
    } catch (const par::RankFailure& e) {
      stats.detect_s += e.silent_s();
      if (!on_fault(Fault::rank_failure, e.what(), e.rank())) throw;
    } catch (const par::TimeoutError& e) {
      if (!on_fault(Fault::timeout, e.what())) throw;
    } catch (const par::CorruptMessage& e) {
      if (!on_fault(Fault::corrupt_msg, e.what())) throw;
    } catch (const par::check::CheckError& e) {
      // The dynamic checker diagnoses a stuck world long before the timeout
      // fires; treat its deadlock verdict as the same fault class. Races and
      // collective mismatches are program bugs, not faults — propagate them.
      if (e.kind() != par::check::Violation::deadlock) throw;
      if (!on_fault(Fault::timeout, e.what())) throw;
    } catch (const CheckpointCorrupt& e) {
      if (!on_fault(Fault::corrupt_ckpt, e.what())) throw;
    }
    // Anything else propagates out of the try untouched: a bug, not a fault.
  }
}

}  // namespace esamr::resil
