// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// checksum guarding every checkpoint section. Software table-driven
// implementation (slice-by-one); incremental interface so a section can be
// checksummed while it streams through the writer.
#pragma once

#include <cstddef>
#include <cstdint>

namespace esamr::resil {

/// One-shot CRC32C of a buffer.
std::uint32_t crc32c(const void* data, std::size_t nbytes);

/// Incremental: fold `nbytes` more bytes into a running CRC. Start from 0.
std::uint32_t crc32c_update(std::uint32_t crc, const void* data, std::size_t nbytes);

}  // namespace esamr::resil
