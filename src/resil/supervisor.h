// Supervised execution with checkpoint-based recovery (ISSUE 2 tentpole).
//
// resil::supervise wraps par::run in a retry loop that treats four fault
// classes as recoverable:
//
//   par::RankFailure       injected one-shot node failure (par/inject.h)
//   par::TimeoutError      a configured recv/barrier timeout expired
//   par::CorruptMessage    a message envelope failed CRC32C verification
//   resil::CheckpointCorrupt  a snapshot failed CRC validation on restore
//
// State machine per attempt:
//
//   run body --ok--------------------------------> return stats
//      |                                             ^
//      +--recoverable fault--> retries left? --no--> rethrow
//                                   |yes
//                                   v
//              (RankFailure: clear the one-shot kill so the retry
//               does not deterministically die at the same op;
//               CorruptMessage: clear the payload-fault stride — a
//               detected corruption models a transient link fault;
//               CheckpointCorrupt: quarantine the ring's newest entry)
//                                   |
//                                   v
//               exponential backoff with seeded jitter, run again
//
// Any other exception is a bug, not a fault, and is rethrown immediately.
//
// Graded recovery ladder (ISSUE 7): the supervisor is the *top* rung only.
// Corrupt messages are first retried at the link layer (par::ArqConfig) and
// reach this loop only after the retransmission budget is exhausted; silent
// rank deaths are named by the heartbeat detector
// (par::RunOptions::heartbeat_timeout_s) and arrive here as RankFailure like
// injected kills. Confirmed rank failures are then repaired per
// RecoveryPolicy: substitute a pre-allocated spare (world size unchanged),
// re-form a smaller (P-1)-rank world in place, or fall back to the classic
// full restart — each retry restores the newest snapshot elastically, so a
// checkpoint written at P resumes bit-identically at P-1.
//
// Async runtime interaction: a fault can strike a rank with nonblocking
// requests still pending. Unwinding the rank destroys the Request handles,
// which drains them — each isend's payload reference is handed back to the
// runtime for disposal, the checker's in-flight buffer regions are retired,
// and CommStats::requests_drained counts the abandonments — so the retry
// starts from a clean world with no leaked buffer ownership. Unconsumed
// messages die with the World; every attempt constructs a fresh one.
//
// The body is an ordinary SPMD function; on every attempt it is expected to
// probe its CheckpointRing and resume from the newest valid snapshot (the
// mantle app does exactly this). The RecoveryContext passed alongside the
// Comm lets rank 0 report what recovery cost: snapshot bytes re-read and
// steps executed, from which the supervisor accounts the steps a failed
// attempt completed as replayed work.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "par/comm.h"

namespace esamr::resil {

class CheckpointRing;

/// Cooperative checkpoint-and-suspend handshake between a scheduler and a
/// supervised job (the serving layer's preemption primitive; see src/serve).
/// The scheduler calls request(); the job body observes the request at its
/// next step boundary — through a *collective* poll so every rank agrees on
/// the step it yields at — commits a checkpoint, and throws Suspended. The
/// supervisor returns with RecoveryStats::suspended = true instead of
/// treating the unwind as a fault. A later supervise call over the same
/// checkpoint ring resumes bit-identically, elastically at any world size
/// (that is checkpoint-based preemption / migration).
class SuspendToken {
 public:
  /// Ask the supervised job to checkpoint and yield (idempotent, thread-safe).
  void request() noexcept { flag_.store(true, std::memory_order_relaxed); }
  /// True once a suspend has been requested and not yet cleared.
  bool requested() const noexcept { return flag_.load(std::memory_order_relaxed); }
  /// Re-arm the token before resuming the job.
  void clear() noexcept { flag_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> flag_{false};
};

/// Thrown by a supervised body after committing a checkpoint in response to
/// SuspendToken::request(). Not a fault: supervise returns immediately with
/// RecoveryStats::suspended = true, burns no retry budget, and the job's
/// ring holds everything a later supervise call needs to resume.
class Suspended : public std::exception {
 public:
  const char* what() const noexcept override { return "esamr::resil job suspended"; }
};

/// How the supervisor repairs a confirmed rank failure (the top rung of the
/// recovery ladder; the two cheaper rungs — link-level ARQ and heartbeat
/// detection — live in par and need no supervisor involvement to *heal*,
/// only to be observed). Escalation order on a rank failure:
///   spare -> shrink -> full_restart
/// i.e. `spare` falls back to shrinking when the spare pool is empty, and
/// `shrink` falls back to a full restart at the floor world size.
enum class RecoveryMode { full_restart, shrink, spare };

const char* recovery_mode_name(RecoveryMode m);

/// Rank-failure repair policy (see RecoveryMode). In-place repairs (shrink /
/// spare) exempt the victim's rank from further kill selection
/// (par::InjectConfig::kill_exempt): the failed node has been excluded or
/// replaced by a fresh one, so its deterministic kill must not re-fire —
/// while later victims still die, so back-to-back failures stay testable.
struct RecoveryPolicy {
  RecoveryMode on_rank_failure = RecoveryMode::full_restart;
  /// Pre-allocated spare ranks available for RecoveryMode::spare. Each
  /// consumed spare keeps the world size unchanged.
  int spares = 0;
  /// Smallest world RecoveryMode::shrink may re-form; at the floor, a rank
  /// failure escalates to a full restart.
  int min_ranks = 1;
};

/// What a supervised run cost in recovery terms.
struct RecoveryStats {
  int attempts = 0;            ///< par::run launches (>= 1)
  int failures = 0;            ///< recoverable faults caught
  int corrupt_msgs = 0;        ///< failures that were CorruptMessage
  std::int64_t bytes_reread = 0;     ///< snapshot bytes read across restores
  std::uint64_t steps_replayed = 0;  ///< steps completed by failed attempts
  double backoff_s = 0.0;            ///< total time slept between attempts
  double backoff_min_s = 0.0;        ///< shortest jittered sleep taken (0 = none)
  double backoff_max_s = 0.0;        ///< longest jittered sleep taken (0 = none)

  // Recovery-ladder observability: how many faults each layer healed.
  int healed_link = 0;     ///< corrupt messages repaired by ARQ (never surfaced)
  int healed_spare = 0;    ///< rank failures repaired by consuming a spare
  int healed_shrink = 0;   ///< rank failures repaired by shrinking the world
  int healed_restart = 0;  ///< faults healed by a full restart-and-replay
  /// World size the run finished at (nranks minus successful shrinks).
  int ranks_final = 0;
  /// True when the run ended in a cooperative checkpoint-and-suspend (see
  /// SuspendToken) rather than completing; no retry budget was consumed.
  bool suspended = false;

  // Mean-time-to-repair accounting. A repair interval runs from catching a
  // fault to the next attempt's first successful snapshot restore (the world
  // is computing again); detect_s separately accumulates how long heartbeat
  // victims were silent before a peer named them (0 for self-thrown faults).
  int repairs = 0;        ///< completed fault -> restored intervals
  double repair_s = 0.0;  ///< total wall time across those intervals
  double detect_s = 0.0;  ///< total silent-before-detection time
  /// Mean time to repair at the supervisor layer (link-layer heals are
  /// process-wide: see par::arq_stats().heal_s / healed).
  double mttr_s() const { return repairs > 0 ? repair_s / repairs : 0.0; }

  /// One message per caught fault, capped at SupervisorOptions::
  /// failure_log_max so a long-lived service job under sustained fault load
  /// cannot grow memory without bound; overflow is counted, not stored.
  std::vector<std::string> failure_log;
  int failures_dropped = 0;  ///< faults whose log line was dropped by the cap

  /// Fold a later supervise call's stats into this one: counters and times
  /// accumulate, ranks_final/suspended take the newer call's value, and the
  /// failure log appends (each call is individually capped). The serving
  /// layer uses this to account one job across suspend/resume cycles.
  void merge(const RecoveryStats& o);

  std::string summary() const;
};

struct SupervisorOptions {
  /// Retries after the first attempt; attempt count is at most 1 + max_retries.
  int max_retries = 3;
  double backoff_initial_s = 0.01;
  double backoff_factor = 2.0;
  /// Nominal backoff ceiling (the cap the exponential schedule saturates at;
  /// the *realised* longest sleep is RecoveryStats::backoff_max_s).
  double backoff_cap_s = 1.0;
  /// Fractional jitter applied to each backoff sleep: the actual sleep is
  /// backoff * (1 + jitter * u) with u drawn deterministically from
  /// (inject seed, attempt) in [-1, 1). 0 disables jitter. Jitter decorrelates
  /// retry storms across concurrent supervisors while staying reproducible;
  /// the realised bounds are recorded in RecoveryStats::backoff_{min,max}_s.
  /// The schedule is drawn from par::SeededBackoff with key inject.seed ^
  /// 0xbac0ff ^ mix64(backoff_salt), one draw per caught fault.
  double backoff_jitter = 0.5;
  /// Per-supervisor identity mixed into the backoff key so concurrent
  /// supervisors sharing an inject seed draw *decorrelated* jitter instead of
  /// retrying in lockstep (a retry storm). The serving layer passes the job
  /// id. The default 0 mixes to zero (mix64(0) == 0), keeping every
  /// single-job schedule bit-identical to the pre-salt ones.
  std::uint64_t backoff_salt = 0;
  /// Cap on RecoveryStats::failure_log entries per supervise call; further
  /// faults are still counted (failures / failures_dropped) but not stored.
  int failure_log_max = 64;
  /// Cooperative suspension channel (see SuspendToken). When set, a pending
  /// request observed between attempts returns suspended instead of
  /// retrying; a body-thrown Suspended always returns suspended. Not owned.
  SuspendToken* suspend = nullptr;
  /// Treat injected rank-kill as a one-shot node failure: the retry runs with
  /// kill_after_ops = 0 so the same deterministic kill cannot fire again.
  /// Only consulted on the full-restart path; shrink/spare repairs exempt the
  /// victim instead (see RecoveryPolicy).
  bool clear_kill_on_retry = true;
  /// Treat a detected message corruption as a transient link fault: the retry
  /// runs with corrupt_msg_stride = 0 so the same deterministic payload fault
  /// cannot fire again (mirrors clear_kill_on_retry).
  bool clear_corrupt_on_retry = true;
  /// How rank failures are repaired (full restart / in-place shrink / spare).
  RecoveryPolicy policy{};
};

/// Per-attempt reporting channel between the SPMD body and the supervisor.
/// Methods are thread-safe; by convention only rank 0 records (the counters
/// are global quantities, already replicated).
class RecoveryContext {
 public:
  explicit RecoveryContext(int attempt) : attempt_(attempt) {}

  /// 0 for the first attempt, incremented per retry.
  int attempt() const { return attempt_; }

  /// Rank 0: a checkpoint restore read `bytes` from disk. The first restore
  /// of an attempt also timestamps "the world is computing again", closing
  /// the supervisor's fault -> restored repair interval (MTTR).
  void record_restore(std::int64_t bytes) {
    bytes_reread_.fetch_add(bytes, std::memory_order_relaxed);
    double expect = 0.0;
    restore_wall_.compare_exchange_strong(expect, par::wall_seconds(),
                                          std::memory_order_relaxed);
  }
  /// Rank 0: one application step completed in this attempt.
  void note_step() { steps_.fetch_add(1, std::memory_order_relaxed); }

  std::int64_t bytes_reread() const { return bytes_reread_.load(std::memory_order_relaxed); }
  std::uint64_t steps_done() const { return steps_.load(std::memory_order_relaxed); }
  /// Wall time (par::wall_seconds) of this attempt's first restore; 0 = none.
  double first_restore_wall() const { return restore_wall_.load(std::memory_order_relaxed); }

 private:
  int attempt_;
  std::atomic<std::int64_t> bytes_reread_{0};
  std::atomic<std::uint64_t> steps_{0};
  std::atomic<double> restore_wall_{0.0};
};

using SupervisedBody = std::function<void(par::Comm&, RecoveryContext&)>;

/// Run `body` as an SPMD section under supervision (see file header).
/// `ring` may be null when the body manages its own snapshots (it is only
/// used to quarantine the newest entry after CheckpointCorrupt).
/// Throws the last caught fault when retries are exhausted.
RecoveryStats supervise(int nranks, par::RunOptions opts, const SupervisorOptions& sopts,
                        CheckpointRing* ring, const SupervisedBody& body);

}  // namespace esamr::resil
