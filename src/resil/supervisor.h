// Supervised execution with checkpoint-based recovery (ISSUE 2 tentpole).
//
// resil::supervise wraps par::run in a retry loop that treats four fault
// classes as recoverable:
//
//   par::RankFailure       injected one-shot node failure (par/inject.h)
//   par::TimeoutError      a configured recv/barrier timeout expired
//   par::CorruptMessage    a message envelope failed CRC32C verification
//   resil::CheckpointCorrupt  a snapshot failed CRC validation on restore
//
// State machine per attempt:
//
//   run body --ok--------------------------------> return stats
//      |                                             ^
//      +--recoverable fault--> retries left? --no--> rethrow
//                                   |yes
//                                   v
//              (RankFailure: clear the one-shot kill so the retry
//               does not deterministically die at the same op;
//               CorruptMessage: clear the payload-fault stride — a
//               detected corruption models a transient link fault;
//               CheckpointCorrupt: quarantine the ring's newest entry)
//                                   |
//                                   v
//               exponential backoff with seeded jitter, run again
//
// Any other exception is a bug, not a fault, and is rethrown immediately.
//
// Async runtime interaction: a fault can strike a rank with nonblocking
// requests still pending. Unwinding the rank destroys the Request handles,
// which drains them — each isend's payload reference is handed back to the
// runtime for disposal, the checker's in-flight buffer regions are retired,
// and CommStats::requests_drained counts the abandonments — so the retry
// starts from a clean world with no leaked buffer ownership. Unconsumed
// messages die with the World; every attempt constructs a fresh one.
//
// The body is an ordinary SPMD function; on every attempt it is expected to
// probe its CheckpointRing and resume from the newest valid snapshot (the
// mantle app does exactly this). The RecoveryContext passed alongside the
// Comm lets rank 0 report what recovery cost: snapshot bytes re-read and
// steps executed, from which the supervisor accounts the steps a failed
// attempt completed as replayed work.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "par/comm.h"

namespace esamr::resil {

class CheckpointRing;

/// What a supervised run cost in recovery terms.
struct RecoveryStats {
  int attempts = 0;            ///< par::run launches (>= 1)
  int failures = 0;            ///< recoverable faults caught
  int corrupt_msgs = 0;        ///< failures that were CorruptMessage
  std::int64_t bytes_reread = 0;     ///< snapshot bytes read across restores
  std::uint64_t steps_replayed = 0;  ///< steps completed by failed attempts
  double backoff_s = 0.0;            ///< total time slept between attempts
  double backoff_min_s = 0.0;        ///< shortest jittered sleep taken (0 = none)
  double backoff_max_s = 0.0;        ///< longest jittered sleep taken (0 = none)
  std::vector<std::string> failure_log;  ///< one message per caught fault

  std::string summary() const;
};

struct SupervisorOptions {
  /// Retries after the first attempt; attempt count is at most 1 + max_retries.
  int max_retries = 3;
  double backoff_initial_s = 0.01;
  double backoff_factor = 2.0;
  double backoff_max_s = 1.0;
  /// Fractional jitter applied to each backoff sleep: the actual sleep is
  /// backoff * (1 + jitter * u) with u drawn deterministically from
  /// (inject seed, attempt) in [-1, 1). 0 disables jitter. Jitter decorrelates
  /// retry storms across concurrent supervisors while staying reproducible;
  /// the realised bounds are recorded in RecoveryStats::backoff_{min,max}_s.
  double backoff_jitter = 0.5;
  /// Treat injected rank-kill as a one-shot node failure: the retry runs with
  /// kill_after_ops = 0 so the same deterministic kill cannot fire again.
  bool clear_kill_on_retry = true;
  /// Treat a detected message corruption as a transient link fault: the retry
  /// runs with corrupt_msg_stride = 0 so the same deterministic payload fault
  /// cannot fire again (mirrors clear_kill_on_retry).
  bool clear_corrupt_on_retry = true;
};

/// Per-attempt reporting channel between the SPMD body and the supervisor.
/// Methods are thread-safe; by convention only rank 0 records (the counters
/// are global quantities, already replicated).
class RecoveryContext {
 public:
  explicit RecoveryContext(int attempt) : attempt_(attempt) {}

  /// 0 for the first attempt, incremented per retry.
  int attempt() const { return attempt_; }

  /// Rank 0: a checkpoint restore read `bytes` from disk.
  void record_restore(std::int64_t bytes) {
    bytes_reread_.fetch_add(bytes, std::memory_order_relaxed);
  }
  /// Rank 0: one application step completed in this attempt.
  void note_step() { steps_.fetch_add(1, std::memory_order_relaxed); }

  std::int64_t bytes_reread() const { return bytes_reread_.load(std::memory_order_relaxed); }
  std::uint64_t steps_done() const { return steps_.load(std::memory_order_relaxed); }

 private:
  int attempt_;
  std::atomic<std::int64_t> bytes_reread_{0};
  std::atomic<std::uint64_t> steps_{0};
};

using SupervisedBody = std::function<void(par::Comm&, RecoveryContext&)>;

/// Run `body` as an SPMD section under supervision (see file header).
/// `ring` may be null when the body manages its own snapshots (it is only
/// used to quarantine the newest entry after CheckpointCorrupt).
/// Throws the last caught fault when retries are exhausted.
RecoveryStats supervise(int nranks, par::RunOptions opts, const SupervisorOptions& sopts,
                        CheckpointRing* ring, const SupervisedBody& body);

}  // namespace esamr::resil
