// Checkpoint/restart snapshots for the distributed forest (ISSUE 2 tentpole).
//
// A snapshot is a single self-describing binary file:
//
//   Header       magic "ESAMRCKP", format version, dimension, writer rank
//                count, tree count, connectivity id, global octant count,
//                user step counter, section count, header CRC32C
//   SectionDesc  per section: name, absolute payload offset, byte count,
//                CRC32C, aux word (per-octant width for field sections)
//   payloads     "ranges"  per-writer-rank octant counts (u64 x P_writer)
//                "octants" the global SFC octant sequence (OctMsg records)
//                one section per named per-octant payload field (doubles)
//
// Writes are collective: every rank contributes its local SFC segment
// (allgatherv), rank 0 assembles the file and writes it *atomically* — to a
// temp file, fsync-free temp + std::rename — so a crash mid-write can never
// clobber a previous snapshot. Every section carries a CRC32C; restore
// validates the header CRC and every section CRC before trusting a byte, and
// a mismatch throws CheckpointCorrupt naming the section and file offset.
//
// The commit path is write-then-reread-verify: rank 0 rereads the temp file
// through the same CRC validation restore uses before renaming it into
// place, retrying a bounded number of times. Injected disk faults
// (InjectConfig::disk_fault_stride: torn tail, truncation, transient EIO)
// are keyed on (seed, step, attempt), so a retry draws a fresh hash and the
// loop converges; persistent failure throws CheckpointCorrupt. DiskFaultStats
// counts what the loop saw.
//
// Restore is *elastic*: the reader rank count is independent of the writer's.
// The global octant sequence is rebuilt on rank 0, wrapped into a Forest via
// Forest::from_local_leaves, and redistributed by the existing
// Forest::partition() path (partition_payload when fields ride along), so a
// P=7 snapshot restores bit-identically onto any rank count — the restored
// partition is the canonical equal SFC split, which is exactly what the
// writer held if its last mutation was a partition.
//
// CheckpointRing retains the last K snapshots in a directory so restore can
// fall back past a corrupted newest entry (restore_latest quarantines bad
// files by renaming them *.bad).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "forest/delta.h"
#include "forest/forest.h"

namespace esamr::resil {

inline constexpr std::uint32_t checkpoint_format_version = 1;

/// Thrown when a snapshot fails validation: bad magic, header CRC mismatch,
/// or a section CRC mismatch. The message names the file, the section, and
/// the byte offset so the operator can tell *what* rotted, not just that
/// something did. resil::supervise treats it as a recoverable fault.
class CheckpointCorrupt : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A named per-octant payload field: `data` holds per_oct doubles per local
/// octant, in local SFC order (element order of Forest::for_each_local).
struct NamedField {
  std::string name;
  int per_oct = 1;
  std::vector<double> data;
};

/// Structural fingerprint of a connectivity (trees, vertex ids, coordinates,
/// face graph). Stored in the header and checked on restore so a snapshot
/// cannot silently be loaded onto the wrong macro mesh.
template <int Dim>
std::uint64_t connectivity_id(const forest::Connectivity<Dim>& conn);

/// Collective: snapshot the forest plus `fields` to `path`. Only rank 0
/// touches the filesystem; `path` is ignored on other ranks. `step` is an
/// opaque user counter (e.g. the time-step index) stored in the header.
template <int Dim>
void write_checkpoint(const forest::Forest<Dim>& f, std::uint64_t conn_id, std::uint64_t step,
                      const std::vector<NamedField>& fields, const std::string& path);

template <int Dim>
struct Restored {
  forest::Forest<Dim> forest;
  /// Fields redistributed to follow the restored partition (local SFC order).
  std::vector<NamedField> fields;
  std::uint64_t step = 0;
  /// Snapshot bytes read from disk (replicated to all ranks).
  std::int64_t bytes_read = 0;
};

/// Collective, elastic: load `path` (rank 0 reads and validates all CRCs)
/// and rebuild the forest at the *current* comm size via the partition path.
/// Throws CheckpointCorrupt on validation failure, std::runtime_error when
/// the snapshot does not match (dim, connectivity id).
template <int Dim>
Restored<Dim> restore_checkpoint(par::Comm& comm, const forest::Connectivity<Dim>& conn,
                                 std::uint64_t conn_id, const std::string& path);

/// A directory holding the last `keep` snapshots: full snapshots
/// ckpt-<seq>.esnap interleaved with delta checkpoints ckpt-<seq>.edelta,
/// seq strictly increasing across both kinds. Mutating members are
/// rank-0-only (the collective wrappers below enforce that); the class
/// itself does no communication.
class CheckpointRing {
 public:
  CheckpointRing(std::string dir, int keep);

  const std::string& dir() const { return dir_; }
  int keep() const { return keep_; }

  /// Existing snapshot/delta paths, oldest to newest (ignores *.tmp / *.bad).
  std::vector<std::string> entries() const;
  /// True iff the entry path names a delta checkpoint (.edelta).
  static bool is_delta(const std::string& path);
  /// Newest entry path (either kind), or "" when the ring is empty.
  std::string newest() const;
  /// Path the next full snapshot should be committed to (seq = newest + 1).
  std::string next_path() const;
  /// Path the next delta checkpoint should be committed to (same seq line).
  std::string next_delta_path() const;
  /// Rename the newest entry to <name>.bad so restores fall back past it.
  void quarantine_newest();
  /// Delete oldest entries until at most `keep` remain — but never the
  /// newest full snapshot or anything newer than it (the live delta chain).
  void prune();

 private:
  std::string dir_;
  int keep_;
};

/// Collective: true iff the ring has at least one restorable entry. Only
/// rank 0 lists the directory; the verdict is broadcast so every rank takes
/// the same restore-vs-cold-start branch (a rank-local entries() check would
/// be a classic collective-divergence hazard under concurrent pruning).
bool ring_probe(par::Comm& comm, const CheckpointRing& ring);

/// Collective: write the next ring entry and prune old ones.
template <int Dim>
void write_checkpoint_ring(const forest::Forest<Dim>& f, std::uint64_t conn_id,
                           std::uint64_t step, const std::vector<NamedField>& fields,
                           CheckpointRing& ring);

/// Collective: restore the newest ring entry whose CRCs validate. Corrupt
/// entries are quarantined and counted in *fallbacks (if non-null), and the
/// next-older entry is tried. Throws CheckpointCorrupt when every entry is
/// corrupt and std::runtime_error when the ring is empty. Full snapshots
/// only — a delta chain is restored with restore_latest_chain.
template <int Dim>
Restored<Dim> restore_latest(par::Comm& comm, const forest::Connectivity<Dim>& conn,
                             std::uint64_t conn_id, CheckpointRing& ring,
                             int* fallbacks = nullptr);

/// Collective: append a delta checkpoint to the ring. `delta` holds the
/// change regions accumulated since the previous ring write (the caller
/// clears it afterwards); the file stores the replicated regions, the
/// current leaves inside them (global SFC order), and the `fields` values on
/// exactly those leaves — so fields mutated outside the delta regions since
/// the base snapshot need a full snapshot instead. The file is CRC-sealed
/// like a full snapshot and chained to its predecessor by (base seq,
/// prev seq, prev header CRC). Falls back to a full write_checkpoint_ring
/// (collective decision) when the ring has no full-snapshot anchor, the
/// delta overflowed, or ESAMR_INCR=0. OpStats::ckpt_delta_bytes counts the
/// bytes of delta files committed.
template <int Dim>
void write_delta_checkpoint_ring(const forest::Forest<Dim>& f, std::uint64_t conn_id,
                                 std::uint64_t step, const std::vector<NamedField>& fields,
                                 forest::DeltaSet<Dim>& delta, CheckpointRing& ring);

/// Collective: restore the newest full snapshot whose CRCs validate, then
/// replay the delta chain on top of it in sequence order. The chain stops at
/// the first delta that is corrupt or whose (base seq, prev seq, prev CRC)
/// link does not match — the corrupt file is quarantined, later deltas are
/// orphaned, and the state restored is the longest valid prefix (worst case:
/// the full snapshot alone). Corrupt files quarantined are counted in
/// *fallbacks. Elastic like restore_checkpoint.
template <int Dim>
Restored<Dim> restore_latest_chain(par::Comm& comm, const forest::Connectivity<Dim>& conn,
                                   std::uint64_t conn_id, CheckpointRing& ring,
                                   int* fallbacks = nullptr);

/// How corrupt_checkpoint damages a snapshot file.
enum class CorruptKind {
  byte_flip,      ///< flip one seeded bit inside the section data region
  truncate_tail,  ///< cut a seeded number of bytes off the end of the file
  torn_write,     ///< garble a seeded-length run of tail bytes in place
};

const char* corrupt_kind_name(CorruptKind k);

/// Fault-injection helper for tests: damage the snapshot at `path` so the
/// next restore must fail validation (section CRC mismatch for byte_flip and
/// torn_write, out-of-range section or short read for truncate_tail). The
/// damage site/extent is a pure function of `seed`.
void corrupt_checkpoint(const std::string& path, CorruptKind kind, std::uint64_t seed);

/// Back-compat wrapper: corrupt_checkpoint(path, CorruptKind::byte_flip, seed).
void corrupt_checkpoint_byte(const std::string& path, std::uint64_t seed);

/// Process-wide counters for the checkpoint commit path (rank 0 writes, but
/// the counters are process globals so tests can read them after par::run).
struct DiskFaultStats {
  std::int64_t commits = 0;          ///< checkpoints successfully published
  std::int64_t write_retries = 0;    ///< attempts discarded and retried
  std::int64_t eio_injected = 0;     ///< transient EIO faults drawn
  std::int64_t torn_injected = 0;    ///< torn-tail faults drawn
  std::int64_t trunc_injected = 0;   ///< truncation faults drawn
  std::int64_t verify_failures = 0;  ///< reread validations that failed
};

DiskFaultStats disk_fault_stats();
void reset_disk_fault_stats();

extern template std::uint64_t connectivity_id<2>(const forest::Connectivity<2>&);
extern template std::uint64_t connectivity_id<3>(const forest::Connectivity<3>&);
extern template void write_checkpoint<2>(const forest::Forest<2>&, std::uint64_t, std::uint64_t,
                                         const std::vector<NamedField>&, const std::string&);
extern template void write_checkpoint<3>(const forest::Forest<3>&, std::uint64_t, std::uint64_t,
                                         const std::vector<NamedField>&, const std::string&);
extern template Restored<2> restore_checkpoint<2>(par::Comm&, const forest::Connectivity<2>&,
                                                  std::uint64_t, const std::string&);
extern template Restored<3> restore_checkpoint<3>(par::Comm&, const forest::Connectivity<3>&,
                                                  std::uint64_t, const std::string&);
extern template void write_checkpoint_ring<2>(const forest::Forest<2>&, std::uint64_t,
                                              std::uint64_t, const std::vector<NamedField>&,
                                              CheckpointRing&);
extern template void write_checkpoint_ring<3>(const forest::Forest<3>&, std::uint64_t,
                                              std::uint64_t, const std::vector<NamedField>&,
                                              CheckpointRing&);
extern template Restored<2> restore_latest<2>(par::Comm&, const forest::Connectivity<2>&,
                                              std::uint64_t, CheckpointRing&, int*);
extern template Restored<3> restore_latest<3>(par::Comm&, const forest::Connectivity<3>&,
                                              std::uint64_t, CheckpointRing&, int*);
extern template void write_delta_checkpoint_ring<2>(const forest::Forest<2>&, std::uint64_t,
                                                    std::uint64_t,
                                                    const std::vector<NamedField>&,
                                                    forest::DeltaSet<2>&, CheckpointRing&);
extern template void write_delta_checkpoint_ring<3>(const forest::Forest<3>&, std::uint64_t,
                                                    std::uint64_t,
                                                    const std::vector<NamedField>&,
                                                    forest::DeltaSet<3>&, CheckpointRing&);
extern template Restored<2> restore_latest_chain<2>(par::Comm&, const forest::Connectivity<2>&,
                                                    std::uint64_t, CheckpointRing&, int*);
extern template Restored<3> restore_latest_chain<3>(par::Comm&, const forest::Connectivity<3>&,
                                                    std::uint64_t, CheckpointRing&, int*);

}  // namespace esamr::resil
