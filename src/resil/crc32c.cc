#include "resil/crc32c.h"

#include <array>

namespace esamr::resil {

namespace {

constexpr std::uint32_t poly = 0x82F63B78u;  // reflected Castagnoli

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? (c >> 1) ^ poly : c >> 1;
    t[i] = c;
  }
  return t;
}

constexpr auto table = make_table();

}  // namespace

std::uint32_t crc32c_update(std::uint32_t crc, const void* data, std::size_t nbytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < nbytes; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ p[i]) & 0xFFu];
  }
  return ~crc;
}

std::uint32_t crc32c(const void* data, std::size_t nbytes) {
  return crc32c_update(0, data, nbytes);
}

}  // namespace esamr::resil
